// Linear-time steady-state EM stress analysis on interconnect trees.
//
// The transient Korhonen solve answers "when does the stress reach σ_crit",
// but for most wires sign-off only asks "does it EVER" — and the t→∞ limit
// has a closed form. At steady state the atomic flux vanishes on every
// branch of a blocking-terminated interconnect tree:
//
//   ∂σ/∂x + G_b = 0,  G_b = e·Z*·ρ·j_b / Ω,
//
// so σ is piecewise linear with slope −G_b along each branch, continuous at
// junctions, and fixed by one atom-conservation constraint per connected
// tree (the total stress integral over the tree volume is preserved from
// the uniform initial state, for uniform B). Following Sapatnekar's
// follow-up ("A Linear-Time Algorithm for Steady-State Analysis of
// Electromigration in General Interconnects", PAPERS.md) the whole profile
// is computed in O(n) with two tree traversals: a top-down sweep
// accumulating the relative stress φ(node) = −Σ G_b·L_b along the root
// path, then a volume-weighted average fixing the conservation offset.
// For a single two-terminal line this reduces exactly to the Blech
// saturation σ_T ± G·L/2 (em/korhonen_pde.h's steadyStateCathodeStress).
//
// The topology decomposition (traversal order, per-branch volumes) is
// immutable and reusable: a power-grid Monte Carlo rebuilds nothing when a
// via fails — only the per-branch current densities change — so each
// failure configuration costs two linear passes instead of a PDE
// time-stepping run (DESIGN.md §5.14).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "em/em_params.h"

namespace viaduct {

/// One branch of an interconnect tree. `currentDensity` fields elsewhere
/// are SIGNED along the a→b orientation: j > 0 raises tensile stress at
/// the a side (matching em/korhonen_pde.h, where positive j makes x = 0
/// the cathode).
struct SteadyBranch {
  int a = 0;
  int b = 0;
  double length = 0.0;  // [m]
  double area = 0.0;    // cross-section [m²]
};

/// EM stress-gradient magnitude G = e·Z*·ρ·j/Ω [Pa/m] for a SIGNED current
/// density j [A/m²] (sign carries through).
double stressGradientPerMeter(double currentDensity,
                              const EmParameters& params);

/// Steady-state solver over one fixed tree topology. Construction builds
/// the traversal decomposition once (O(n)); every solve() against new
/// per-branch current densities is two linear passes. Instances are
/// immutable after construction and safe to share read-only across
/// threads (solves write only caller-provided buffers).
class SteadyStateTreeSolver {
 public:
  /// `nodeCount` nodes labelled [0, nodeCount); `branches` must form a
  /// single connected acyclic tree spanning them (throws PreconditionError
  /// otherwise). Branch lengths and areas must be positive.
  SteadyStateTreeSolver(int nodeCount, std::vector<SteadyBranch> branches);

  int nodeCount() const { return nodeCount_; }
  int branchCount() const { return static_cast<int>(branches_.size()); }
  const std::vector<SteadyBranch>& branches() const { return branches_; }
  /// True when every junction has degree <= 2 (the tree is a simple path);
  /// the transient reference solver supports only paths.
  bool isPath() const { return isPath_; }
  double totalVolume() const { return totalVolume_; }

  /// Steady-state stress at every node for SIGNED per-branch current
  /// densities [A/m²] (indexed like `branches()`), uniform initial stress
  /// `sigmaT` [Pa]. `nodeStress` must have nodeCount() entries.
  void solve(std::span<const double> branchCurrentDensity,
             const EmParameters& params, double sigmaT,
             std::span<double> nodeStress) const;

  /// Largest steady-state stress RISE over σ_T [Pa] (the immortality
  /// driver: the tree can never nucleate a void iff the max rise stays
  /// below σ_C − σ_T − σ_pkg). `scratch` must have nodeCount() entries and
  /// is clobbered; pass a reused buffer on hot paths.
  double maxStressRise(std::span<const double> branchCurrentDensity,
                       const EmParameters& params,
                       std::span<double> scratch) const;

  /// Stable digest of the decomposition (topology + geometry), used to key
  /// checkpoint snapshots of runs whose verdicts depend on this tree.
  std::uint64_t digest() const { return digest_; }

 private:
  struct Step {
    int branch = 0;   // index into branches_
    int parent = 0;   // node already assigned
    int child = 0;    // node assigned by this step
    double sign = 1;  // +1 when parent == branches_[branch].a
  };

  int nodeCount_ = 0;
  bool isPath_ = true;
  double totalVolume_ = 0.0;
  std::uint64_t digest_ = 0;
  std::vector<SteadyBranch> branches_;
  std::vector<Step> order_;  // BFS from node 0; nodeCount_-1 steps
};

/// Implicit-Euler reference integrator of the transient Korhonen PDE on a
/// PATH tree with per-branch (piecewise-constant) source terms — the
/// "run the transient solve to its asymptote" baseline the steady-state
/// pass replaces. Cell-centered finite volumes with flux-matched face
/// source terms, so its t→∞ limit reproduces the piecewise-linear
/// continuous steady state exactly at cell centers (enabling the ≤1e-8
/// steady-vs-asymptote parity gates). Geometric time-step ramp: implicit
/// Euler is L-stable, so late steps can span decades of diffusion time
/// while monotonically damping every mode.
class TransientPathReference {
 public:
  struct Options {
    int cellsPerBranch = 4;
    /// Initial dt as a multiple of the smallest cell diffusion time.
    double initialCellFraction = 0.5;
    /// Per-step geometric dt growth factor.
    double growth = 1.15;
    /// Flux-residual stop tolerance (see steadyStateResidual()).
    double tolerance = 1e-9;
    /// Horizon as a multiple of the whole-path diffusion time L²/κ; hitting
    /// it un-converged WARNs.
    double horizonDiffusionTimes = 64.0;
  };

  /// `tree` must satisfy isPath(). Branch currents are SIGNED along each
  /// branch's a→b orientation, like SteadyStateTreeSolver::solve.
  TransientPathReference(const SteadyStateTreeSolver& tree,
                         std::span<const double> branchCurrentDensity,
                         const EmParameters& params, double sigmaT,
                         const Options& options);
  TransientPathReference(const SteadyStateTreeSolver& tree,
                         std::span<const double> branchCurrentDensity,
                         const EmParameters& params, double sigmaT)
      : TransientPathReference(tree, branchCurrentDensity, params, sigmaT,
                               Options{}) {}

  /// Advances one implicit-Euler step (dt grows geometrically). Returns
  /// the new time [s].
  double step();

  /// Dimensionless steady-state distance: max face |flux| / max |G| over
  /// the path (0 exactly at the asymptote; 1 is the fresh-line scale).
  double steadyStateResidual() const;

  /// Steps until steadyStateResidual() <= options.tolerance or the time
  /// horizon is hit (WARNs when un-converged). Returns the residual.
  double runToSteadyState();

  double time() const { return time_; }
  /// Largest stress rise over σ_T across cell centers [Pa].
  double maxStressRise() const;
  /// Largest stress rise over σ_T including the path's junction and end
  /// NODES, reconstructed by per-branch linear extrapolation of the two
  /// boundary cells (exact at the asymptote, where the profile is linear
  /// within each branch). Use this for verdicts so transient and
  /// steady-state modes judge the same extreme points.
  double maxNodalStressRise() const;
  /// Stress at the cell centers, path order.
  const std::vector<double>& cellStress() const { return sigma_; }
  /// Steady-state stress at the cell centers predicted by the closed-form
  /// tree solution (for parity checks against the marched asymptote).
  std::vector<double> closedFormCellStress() const;

 private:
  Options options_;
  double sigmaT_ = 0.0;
  double kappa_ = 0.0;
  double time_ = 0.0;
  double dt_ = 0.0;
  double horizon_ = 0.0;
  double gradientScale_ = 1.0;  // max |G| (1 when all currents are zero)
  bool warned_ = false;
  std::vector<double> dx_;       // cell widths, path order
  std::vector<double> faceDx_;   // center-to-center spacing per interior face
  std::vector<double> faceG_;    // flux-matched source term per interior face
  std::vector<double> sigma_;    // cell-center stresses
  std::vector<double> steady_;   // closed-form asymptote at cell centers
  // Thomas-solver scratch.
  mutable std::vector<double> lower_, diag_, upper_, rhs_;
};

}  // namespace viaduct
