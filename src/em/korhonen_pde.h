// Numerical solver for Korhonen's stress-evolution PDE.
//
// The closed-form nucleation time used throughout viaduct (em/korhonen.h)
// comes from the short-time similarity solution of
//
//   ∂σ/∂t = ∂/∂x [ κ (∂σ/∂x + G) ],   κ = Deff·B·Ω/(kB·T),
//   G = e·Z*·ρ·j/Ω,
//
// on a finite line x ∈ [0, L] with blocking boundaries (zero atomic flux:
// ∂σ/∂x + G = 0 at both ends) and σ(x, 0) = σ_T. This module solves the
// PDE directly (Crank–Nicolson finite differences) so the closed form can
// be validated — and so the finite-line saturation the similarity solution
// misses (σ_max → σ_T + G·L/2 as t → ∞, the Blech steady state) is
// available for immortality analysis (em/blech.h).
#pragma once

#include <vector>

#include "em/em_params.h"

namespace viaduct {

struct KorhonenPdeConfig {
  /// Line length [m] (via-to-via segment of a power-grid wire).
  double lineLength = 50e-6;
  /// Current density [A/m²] (positive drives atoms toward x = L, raising
  /// tensile stress at the cathode x = 0).
  double currentDensity = 1e10;
  /// Initial (thermomechanical + package) stress [Pa].
  double initialStress = 0.0;
  /// Spatial points (>= 8).
  int gridPoints = 200;
  /// Time step as a fraction of the diffusion time of one cell (the
  /// Crank–Nicolson scheme is unconditionally stable; this sets accuracy).
  double cellTimeFraction = 2.0;
};

class KorhonenPdeSolver {
 public:
  KorhonenPdeSolver(const KorhonenPdeConfig& config,
                    const EmParameters& params);

  /// Advances to time t [s] (monotonically increasing across calls).
  void advanceTo(double t);

  double time() const { return time_; }

  /// Stress profile σ(x) at the current time.
  const std::vector<double>& stress() const { return sigma_; }
  /// Cathode stress σ(0, t) — the void-nucleation driver.
  double cathodeStress() const { return sigma_.front(); }

  /// Analytic short-time cathode stress:
  /// σ_T + (2G/√π)·√(κ·t) (valid while the diffusion front < L).
  double analyticCathodeStress(double t) const;

  /// Steady-state cathode stress σ_T + G·L/2 (the Blech limit).
  double steadyStateCathodeStress() const;

  /// Dimensionless distance from the steady state: max interior
  /// |∂σ/∂x + G| normalized by G. Exactly 0 at the asymptote (where the
  /// atomic flux vanishes everywhere); 1 on the fresh flat line.
  double steadyStateResidual() const;

  /// Advances until steadyStateResidual() <= `tolerance`, or until
  /// `horizonDiffusionTimes`·L²/κ of simulated time elapses — hitting the
  /// horizon un-converged WARNs (the caller is consuming a drifting
  /// "asymptote"). Returns the residual actually reached.
  double advanceToSteadyState(double tolerance = 1e-6,
                              double horizonDiffusionTimes = 100.0);

  /// First time the cathode stress reaches `threshold` [Pa], found by
  /// integrating forward (returns +inf if the steady state stays below).
  double timeToCathodeStress(double threshold);

  double kappa() const { return kappa_; }
  double stressGradient() const { return gradient_; }

 private:
  void step(double dt);

  KorhonenPdeConfig config_;
  double kappa_ = 0.0;     // κ [m²/s]
  double gradient_ = 0.0;  // G [Pa/m]
  double dx_ = 0.0;
  double time_ = 0.0;
  std::vector<double> sigma_;
};

}  // namespace viaduct
