#include "em/korhonen.h"

#include <cmath>

#include "common/check.h"
#include "common/physical_constants.h"
#include "em/critical_stress.h"

namespace viaduct {

double korhonenCtn(double currentDensity, const EmParameters& params) {
  VIADUCT_REQUIRE_MSG(currentDensity > 0.0, "current density must be > 0");
  const double kT = constants::kBoltzmann * params.temperatureK;
  const double force = constants::kElementaryCharge *
                       params.effectiveChargeNumber * params.resistivityOhmM *
                       currentDensity;
  return 4.0 * params.bulkModulusPa * force * force /
         (M_PI * kT * params.atomicVolume);
}

double nucleationTime(double sigmaC, double sigmaT, double currentDensity,
                      double deff, const EmParameters& params) {
  VIADUCT_REQUIRE(deff > 0.0);
  const double sigmaEff = sigmaC - sigmaT - params.packageStressPa;
  if (sigmaEff <= 0.0) return 0.0;
  return sigmaEff * sigmaEff / (korhonenCtn(currentDensity, params) * deff);
}

double sampleTtf(Rng& rng, double sigmaT, double currentDensity,
                 const EmParameters& params) {
  const Lognormal sigmaCDist = criticalStressDistribution(params);
  const double sigmaC = sigmaCDist.sample(rng);
  const double deff =
      rng.lognormal(std::log(params.medianDeff()), params.deffSigma);
  return nucleationTime(sigmaC, sigmaT, currentDensity, deff, params);
}

Lognormal approximateTtfLognormal(double sigmaT, double currentDensity,
                                  const EmParameters& params) {
  const Lognormal sigmaCDist = criticalStressDistribution(params);
  const double shift = sigmaT + params.packageStressPa;

  // Guard: the shifted-square moment match breaks down if the critical
  // stress has non-negligible mass below the shift.
  const double pBelow = sigmaCDist.cdf(shift);
  if (pBelow > 1e-4) {
    throw NumericalError(
        "approximateTtfLognormal: P(sigma_C < sigma_T) = " +
        std::to_string(pBelow) + " is too large for a lognormal fit");
  }

  // Moments of Y = (X - shift)^2 with X lognormal.
  auto xMoment = [&](int k) {
    const double kk = static_cast<double>(k);
    return std::exp(kk * sigmaCDist.mu() +
                    0.5 * kk * kk * sigmaCDist.sigma() * sigmaCDist.sigma());
  };
  const double m1 = xMoment(1), m2 = xMoment(2), m3 = xMoment(3),
               m4 = xMoment(4);
  const double s = shift;
  const double ey = m2 - 2.0 * s * m1 + s * s;
  const double ey2 = m4 - 4.0 * s * m3 + 6.0 * s * s * m2 -
                     4.0 * s * s * s * m1 + s * s * s * s;
  VIADUCT_CHECK(ey > 0.0 && ey2 > ey * ey);
  const Lognormal ySq = Lognormal::fromMeanStddev(ey, std::sqrt(ey2 - ey * ey));

  // TTF = Y / (Ctn * Deff): division by a lognormal is exact in log space.
  const Lognormal deff(std::log(params.medianDeff()), params.deffSigma);
  const std::array<Lognormal, 2> terms = {ySq, deff};
  const std::array<double, 2> exponents = {1.0, -1.0};
  const Lognormal ratio = Lognormal::product(terms, exponents);
  return ratio.scaled(1.0 / korhonenCtn(currentDensity, params));
}

}  // namespace viaduct
