// Operating-condition derating for the EM models.
//
// Production sign-off rarely sees a single DC current and a single
// temperature: loads are duty-cycled waveforms and the die carries thermal
// gradients. For nucleation-phase EM, the stress build-up integrates the
// atomic flux, so a periodic waveform acts through its (recovery-weighted)
// average current density; temperature acts through the Arrhenius Deff,
// the 1/T factor of Eq. 3, and the thermomechanical stress σ_T(T) (which
// RELAXES as the chip runs hotter — see em/acceleration.h). The grid Monte
// Carlo consumes these as per-array TTF scale factors
// (GridMcOptions::perArrayTtfScale).
#pragma once

#include <span>

#include "em/em_params.h"

namespace viaduct {

/// One phase of a periodic current waveform.
struct CurrentPhase {
  /// Signed current density [A/m²]; negative = reverse direction.
  double density = 0.0;
  /// Phase duration [s] (any consistent unit; only ratios matter).
  double duration = 0.0;
};

/// Effective DC-equivalent current density of a periodic waveform for
/// nucleation-phase EM: the duty-weighted average of the forward flux
/// minus `recoveryFactor` times the reverse flux (recoveryFactor = 1 is
/// full bidirectional healing; 0 ignores reverse flow). Clamped at 0.
/// Requires at least one phase and positive total duration.
double effectiveCurrentDensity(std::span<const CurrentPhase> waveform,
                               double recoveryFactor = 1.0);

/// Multiplicative TTF derating for an array operating at `temperatureK`
/// instead of the characterization temperature `refTemperatureK`:
/// returns tn(T) / tn(T_ref) for the median via, combining Arrhenius
/// diffusion, the kB·T factor of Eq. 3, and the linear relaxation of the
/// reference stress `sigmaTAtRef` toward the anneal temperature.
/// > 1 means the array lives LONGER at `temperatureK`.
double temperatureDeratingFactor(double temperatureK, double refTemperatureK,
                                 double sigmaTAtRef,
                                 double annealTemperatureK,
                                 const EmParameters& params);

}  // namespace viaduct
