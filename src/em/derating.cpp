#include "em/derating.h"

#include <algorithm>

#include "common/check.h"
#include "em/acceleration.h"
#include "em/critical_stress.h"
#include "em/korhonen.h"

namespace viaduct {

double effectiveCurrentDensity(std::span<const CurrentPhase> waveform,
                               double recoveryFactor) {
  VIADUCT_REQUIRE_MSG(!waveform.empty(), "empty waveform");
  VIADUCT_REQUIRE(recoveryFactor >= 0.0 && recoveryFactor <= 1.0);
  double forward = 0.0, reverse = 0.0, total = 0.0;
  for (const auto& phase : waveform) {
    VIADUCT_REQUIRE_MSG(phase.duration >= 0.0, "negative phase duration");
    total += phase.duration;
    if (phase.density >= 0.0) {
      forward += phase.density * phase.duration;
    } else {
      reverse += -phase.density * phase.duration;
    }
  }
  VIADUCT_REQUIRE_MSG(total > 0.0, "waveform has zero total duration");
  return std::max(0.0, (forward - recoveryFactor * reverse) / total);
}

double temperatureDeratingFactor(double temperatureK, double refTemperatureK,
                                 double sigmaTAtRef,
                                 double annealTemperatureK,
                                 const EmParameters& params) {
  VIADUCT_REQUIRE(temperatureK > 0.0 && refTemperatureK > 0.0);
  VIADUCT_REQUIRE(annealTemperatureK > refTemperatureK);
  VIADUCT_REQUIRE(sigmaTAtRef >= 0.0);

  auto medianTn = [&](double tK, double sigmaT) {
    EmParameters at = params;
    at.temperatureK = tK;
    const double sigmaC = criticalStressDistribution(at).median();
    return nucleationTime(sigmaC, sigmaT, /*currentDensity=*/1e10,
                          at.medianDeff(), at);
  };

  const double sigmaTAtT = stressAtTemperature(
      sigmaTAtRef, refTemperatureK, annealTemperatureK, temperatureK);
  const double tnRef = medianTn(refTemperatureK, sigmaTAtRef);
  const double tnT = medianTn(temperatureK, sigmaTAtT);
  VIADUCT_REQUIRE_MSG(tnRef > 0.0,
                      "reference condition nucleates instantly");
  return tnT / tnRef;
}

}  // namespace viaduct
