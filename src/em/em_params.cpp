#include "em/em_params.h"

#include <cmath>

#include "common/check.h"
#include "common/physical_constants.h"

namespace viaduct {

double EmParameters::medianDeff() const {
  const double kT = constants::kBoltzmann * temperatureK;
  return diffusivityPrefactor *
         std::exp(-activationEnergyEv * constants::kElectronVolt / kT);
}

void EmParameters::validate() const {
  VIADUCT_REQUIRE(activationEnergyEv > 0.0 && activationEnergyEv < 3.0);
  VIADUCT_REQUIRE(diffusivityPrefactor > 0.0);
  VIADUCT_REQUIRE(deffSigma >= 0.0 && deffSigma < 3.0);
  VIADUCT_REQUIRE(atomicVolume > 0.0);
  VIADUCT_REQUIRE(effectiveChargeNumber > 0.0);
  VIADUCT_REQUIRE(resistivityOhmM > 0.0);
  VIADUCT_REQUIRE(bulkModulusPa > 0.0);
  VIADUCT_REQUIRE(surfaceEnergyJm2 > 0.0);
  VIADUCT_REQUIRE(contactAngleDeg > 0.0 && contactAngleDeg <= 180.0);
  VIADUCT_REQUIRE(meanFlawRadius > 0.0);
  VIADUCT_REQUIRE(flawSigmaFraction >= 0.0 && flawSigmaFraction < 1.0);
  VIADUCT_REQUIRE(temperatureK > 200.0 && temperatureK < 700.0);
}

}  // namespace viaduct
