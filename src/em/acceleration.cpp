#include "em/acceleration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/physical_constants.h"
#include "em/critical_stress.h"
#include "em/korhonen.h"

namespace viaduct {

double blackAccelerationFactor(const TestCondition& test,
                               const UseCondition& use,
                               const EmParameters& params) {
  VIADUCT_REQUIRE(test.currentDensity > 0.0 && use.currentDensity > 0.0);
  VIADUCT_REQUIRE(test.temperatureK > 0.0 && use.temperatureK > 0.0);
  const double jRatio = test.currentDensity / use.currentDensity;
  const double ea = params.activationEnergyEv * constants::kElectronVolt;
  const double thermal = std::exp(
      (ea / constants::kBoltzmann) *
      (1.0 / use.temperatureK - 1.0 / test.temperatureK));
  return jRatio * jRatio * thermal;
}

double stressAtTemperature(double sigmaTRef, double refTemperatureK,
                           double annealTemperatureK, double temperatureK) {
  VIADUCT_REQUIRE(annealTemperatureK > refTemperatureK);
  const double scale = (annealTemperatureK - temperatureK) /
                       (annealTemperatureK - refTemperatureK);
  return sigmaTRef * std::max(0.0, scale);
}

namespace {

/// Median nucleation time at a given temperature, current, and stress.
double medianNucleationTime(double temperatureK, double currentDensity,
                            double sigmaT, const EmParameters& params) {
  EmParameters at = params;
  at.temperatureK = temperatureK;
  const double sigmaC = criticalStressDistribution(at).median();
  return nucleationTime(sigmaC, sigmaT, currentDensity, at.medianDeff(), at);
}

}  // namespace

double stressAwareAccelerationFactor(const TestCondition& test,
                                     const UseCondition& use,
                                     double sigmaTAtUse,
                                     double annealTemperatureK,
                                     const EmParameters& params) {
  const double sigmaTTest = stressAtTemperature(
      sigmaTAtUse, use.temperatureK, annealTemperatureK, test.temperatureK);
  const double tTest = medianNucleationTime(
      test.temperatureK, test.currentDensity, sigmaTTest, params);
  const double tUse = medianNucleationTime(
      use.temperatureK, use.currentDensity, sigmaTAtUse, params);
  VIADUCT_REQUIRE_MSG(tTest > 0.0,
                      "test condition nucleates instantly; lower sigma_T");
  VIADUCT_REQUIRE_MSG(tUse > 0.0,
                      "use condition nucleates instantly; lower sigma_T");
  return tUse / tTest;
}

double lifetimeOverestimationFactor(const TestCondition& test,
                                    const UseCondition& use,
                                    double sigmaTAtUse,
                                    double annealTemperatureK,
                                    const EmParameters& params) {
  const double blind = blackAccelerationFactor(test, use, params);
  const double aware = stressAwareAccelerationFactor(
      test, use, sigmaTAtUse, annealTemperatureK, params);
  return blind / aware;
}

}  // namespace viaduct
