// Electromigration model parameters (Eqs. 1–4 of the paper).
//
// Values are the paper's where given (γ_s-based critical stress with
// R̄_f = 10 nm ± 5 %, T = 105 °C operation) and standard Cu DD literature
// values elsewhere. The diffusivity prefactor D0 is the one calibrated
// quantity: it is chosen inside the physical range for Cu interface
// diffusion (1e-9…1e-7 m²/s) such that a Plus-pattern 4×4 array carrying
// j = 1e10 A/m² lands in the paper's Figure 8(a) TTF range (2–14 years).
#pragma once

namespace viaduct {

struct EmParameters {
  /// Effective activation energy Ea [eV] (Cu/cap interface diffusion).
  double activationEnergyEv = 0.85;

  /// EM diffusivity prefactor D0 [m²/s] (calibrated; see header comment).
  double diffusivityPrefactor = 2.7e-9;

  /// Lognormal sigma of Deff (grain/interface microstructure variation,
  /// cf. [Mishra & Sapatnekar, DAC'13]).
  double deffSigma = 0.30;

  /// Atomic volume of copper Ω [m³].
  double atomicVolume = 1.182e-29;

  /// Effective charge number Z*.
  double effectiveChargeNumber = 1.0;

  /// Copper resistivity at operating temperature [Ω·m].
  double resistivityOhmM = 3.0e-8;

  /// Effective bulk modulus B of the Cu/dielectric system [Pa].
  double bulkModulusPa = 28.0e9;

  /// Copper surface free energy γ_s [J/m²] (Eq. 4).
  double surfaceEnergyJm2 = 1.7;

  /// Void contact angle θ_C [degrees]; 90° for the circular flaw (Eq. 4).
  double contactAngleDeg = 90.0;

  /// Mean flaw radius R̄_f [m] and its lognormal sigma as a fraction of the
  /// mean (the paper: 10 nm, 5 %).
  double meanFlawRadius = 10.0e-9;
  double flawSigmaFraction = 0.05;

  /// Operating temperature [K] (105 °C).
  double temperatureK = 378.15;

  /// Package-induced stress [Pa], an input to the method (§2.3); added to
  /// the layout thermomechanical stress.
  double packageStressPa = 0.0;

  /// Thermal diffusivity Deff = D0·exp(−Ea/kB·T) at `temperatureK` [m²/s].
  double medianDeff() const;

  /// Throws PreconditionError if any field is unphysical.
  void validate() const;
};

}  // namespace viaduct
