// viaduct::checkpoint — crash-safe checkpoint/resume for the Monte Carlo
// loops (DESIGN.md §5.8).
//
// A level-2 grid run at production sizes is hours long; a crash, OOM-kill,
// or preemption must not throw away every completed trial. Both MC levels
// periodically snapshot their completed per-trial results to a single file:
//
//   viaduct-checkpoint v1
//   key <configKey>
//   total <Ntrials>
//   trial <idx> <K|D|S> <primary doubles> | <secondary doubles>
//   ...
//   end <record count>
//
// Crash safety: every snapshot is written to `<path>.tmp`, fsync'd, and
// atomically renamed over `<path>`, so the file on disk is always either
// the previous complete snapshot or the new complete snapshot — never a
// torn mixture. The `end <count>` trailer additionally rejects a file
// truncated by means the rename protocol cannot see (filesystem loss,
// manual copy).
//
// Staleness: the `key` line carries the run's configuration key (the
// characterization `cacheKey()` at level 1; a grid/options digest at level
// 2). A snapshot whose key or trial total does not match the resuming run
// is rejected — never silently reused — and the run restarts from scratch.
//
// Determinism: trials draw from counter-based per-trial streams
// Rng(seed, trial), so each trial's result is a pure function of
// (config, trial). Resuming therefore re-derives exactly the missing
// trials and the finished run is bit-identical to an uninterrupted one at
// any thread count and any checkpoint cadence.
//
// Failure semantics: checkpointing is an aid, never a hazard. A failed
// snapshot write warns and the run continues (the previous snapshot stays
// good); a corrupt/stale snapshot on load warns and the run starts from
// scratch. Fault sites `checkpoint.write` / `checkpoint.load` inject both
// paths deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace viaduct::checkpoint {

/// How the trial ended — mirrors the FailurePolicy trial semantics, so
/// discard/salvage accounting survives a resume.
enum class TrialOutcome : unsigned char { kKept, kDiscarded, kSalvaged };

/// One completed trial. The payload interpretation is the owner's:
///   grid MC           primary = {ttf sample, failures}; secondary empty.
///   characterization  primary = failureTimes; secondary = resistanceAfter.
struct TrialRecord {
  std::int64_t trial = 0;
  TrialOutcome outcome = TrialOutcome::kKept;
  std::vector<double> primary;
  std::vector<double> secondary;
};

/// A full snapshot: every completed trial of one (configKey, totalTrials)
/// run, keyed by trial index.
struct Snapshot {
  std::string configKey;
  std::int64_t totalTrials = 0;
  std::map<std::int64_t, TrialRecord> trials;
};

/// Checkpoint knobs carried by GridMcOptions, the characterization spec,
/// and AnalyzerConfig. Deliberately excluded from cache/config keys: the
/// cadence and path never affect the physics.
struct Options {
  /// Snapshot file path; empty disables checkpointing entirely.
  std::string path;
  /// Write a snapshot every N completed trials (≤ 0: only the final
  /// snapshot at run end).
  int everyTrials = 32;
  /// Load `path` before running and re-derive only the missing trials.
  bool resume = false;

  bool enabled() const { return !path.empty(); }
};

/// The snapshot file with the atomic-rename write protocol.
class CheckpointFile {
 public:
  explicit CheckpointFile(std::string path);

  /// Loads and validates the snapshot. Returns std::nullopt — never
  /// throws — when the file is missing, unreadable, structurally corrupt,
  /// truncated, or stale (key/total mismatch); every rejection other than
  /// "missing" warns with the reason.
  std::optional<Snapshot> load(const std::string& expectedKey,
                               std::int64_t expectedTotalTrials) const;

  /// Writes the snapshot crash-safely (temp file + fsync + atomic rename).
  /// Returns false on any I/O failure (callers warn and continue; the
  /// previously renamed snapshot, if any, is untouched).
  bool write(const Snapshot& snapshot) const;

  const std::string& path() const { return path_; }
  std::string tempPath() const { return path_ + ".tmp"; }

 private:
  std::string path_;
};

/// Thread-safe periodic recorder both MC loops drive. Workers call
/// record() once per completed trial; every `everyTrials` completions the
/// accumulated snapshot is rewritten. A disabled recorder (empty path) is
/// a no-op.
class TrialRecorder {
 public:
  TrialRecorder(const Options& options, std::string configKey,
                std::int64_t totalTrials);

  /// Loads the snapshot for resume. Returns the usable records (empty when
  /// disabled, not resuming, or the snapshot was missing/stale/corrupt);
  /// the returned records also seed the recorder, so later snapshots keep
  /// them. Bumps the `checkpoint.resumed_trials` counter.
  std::map<std::int64_t, TrialRecord> restore();

  /// Records one completed trial and writes a snapshot when the cadence
  /// fires. Never throws: a failed write warns and the run continues.
  void record(TrialRecord record);

  /// Writes the final snapshot (when enabled and anything changed since
  /// the last write). Call once after the trial loop.
  void finalize();

  /// Number of trials restore() accepted.
  int resumedTrials() const { return resumedTrials_; }

  /// Seconds since the last snapshot write attempt; negative when the
  /// recorder is disabled or has never written. Lock-free — feeds the
  /// progress reporter's checkpoint-age gauge.
  double secondsSinceLastWrite() const;

  bool enabled() const { return options_.enabled(); }

 private:
  void writeLocked();

  Options options_;
  std::mutex mutex_;
  Snapshot snapshot_;
  int sinceWrite_ = 0;
  int resumedTrials_ = 0;
  /// obs::nowNs() at the last writeLocked() attempt; 0 = never.
  std::atomic<std::uint64_t> lastWriteNs_{0};
};

}  // namespace viaduct::checkpoint
