#include "checkpoint/checkpoint.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/check.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace viaduct::checkpoint {

namespace {

constexpr const char* kMagic = "viaduct-checkpoint v1";

bool parseInt64(std::string_view s, std::int64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

char outcomeChar(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kKept:
      return 'K';
    case TrialOutcome::kDiscarded:
      return 'D';
    case TrialOutcome::kSalvaged:
      return 'S';
  }
  return '?';
}

bool parseOutcome(char c, TrialOutcome* out) {
  switch (c) {
    case 'K':
      *out = TrialOutcome::kKept;
      return true;
    case 'D':
      *out = TrialOutcome::kDiscarded;
      return true;
    case 'S':
      *out = TrialOutcome::kSalvaged;
      return true;
  }
  return false;
}

/// Flushes a freshly written file's data to stable storage. Without this,
/// the atomic rename can land before the data blocks do and a power loss
/// would leave a complete-looking but empty snapshot.
bool syncFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;  // best effort off POSIX
#endif
}

/// Best-effort fsync of the directory holding `path`, so the rename itself
/// survives a crash. Failure is not fatal: the worst case is resuming from
/// the previous snapshot.
void syncParentDir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

CheckpointFile::CheckpointFile(std::string path) : path_(std::move(path)) {
  VIADUCT_REQUIRE(!path_.empty());
}

std::optional<Snapshot> CheckpointFile::load(
    const std::string& expectedKey, std::int64_t expectedTotalTrials) const {
  VIADUCT_SPAN("checkpoint.load");
  std::ifstream is(path_);
  if (!is) return std::nullopt;  // nothing to resume; not a problem
  VIADUCT_COUNTER_ADD("checkpoint.loads", 1);

  const auto reject = [&](const std::string& why) -> std::optional<Snapshot> {
    VIADUCT_COUNTER_ADD("checkpoint.load_rejected", 1);
    VIADUCT_WARN << "checkpoint " << path_ << " rejected (" << why
                 << "); it will not be resumed";
    return std::nullopt;
  };

  std::string line;
  if (!std::getline(is, line) || line != kMagic)
    return reject("bad magic/version header");
  Snapshot snap;
  if (!std::getline(is, line) || line.rfind("key ", 0) != 0)
    return reject("missing key line");
  snap.configKey = line.substr(4);
  if (!std::getline(is, line) || line.rfind("total ", 0) != 0 ||
      !parseInt64(line.substr(6), &snap.totalTrials)) {
    return reject("missing/bad total line");
  }

  bool sawEnd = false;
  std::int64_t endCount = -1;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("end ", 0) == 0) {
      if (!parseInt64(line.substr(4), &endCount))
        return reject("bad end trailer");
      sawEnd = true;
      break;
    }
    if (line.rfind("trial ", 0) != 0)
      return reject("unknown directive '" + line.substr(0, 24) + "'");

    const std::string payload = line.substr(6);
    const auto bar = payload.find('|');
    if (bar == std::string::npos)
      return reject("trial line missing '|' separator");
    const std::string head = payload.substr(0, bar);

    TrialRecord record;
    std::string oc;
    std::string primaryStr;
    {
      std::istringstream hs(head);
      if (!(hs >> record.trial >> oc) || oc.size() != 1 ||
          !parseOutcome(oc[0], &record.outcome)) {
        return reject("bad trial header");
      }
      std::getline(hs, primaryStr);  // rest of `head`: the primary doubles
    }
    if (record.trial < 0 || record.trial >= snap.totalTrials)
      return reject("trial index out of range");
    auto primary = parseDoubles(primaryStr);
    auto secondary = parseDoubles(payload.substr(bar + 1));
    if (!primary || !secondary) return reject("corrupt trial payload");
    record.primary = std::move(*primary);
    record.secondary = std::move(*secondary);
    const std::int64_t trial = record.trial;
    if (!snap.trials.emplace(trial, std::move(record)).second)
      return reject("duplicate trial " + std::to_string(trial));
  }
  if (!sawEnd) return reject("truncated (no end trailer)");
  if (endCount != static_cast<std::int64_t>(snap.trials.size()))
    return reject("record count mismatch (trailer says " +
                  std::to_string(endCount) + ", found " +
                  std::to_string(snap.trials.size()) + ")");
  if (snap.configKey != expectedKey)
    return reject("stale: config key mismatch");
  if (snap.totalTrials != expectedTotalTrials)
    return reject("stale: snapshot is for " +
                  std::to_string(snap.totalTrials) + " trials, run wants " +
                  std::to_string(expectedTotalTrials));
  // Models a snapshot whose payload was corrupted in a way that survives
  // the structural checks above (bit rot past the parser).
  if (fault::shouldInject("checkpoint.load"))
    return reject("injected corruption (checkpoint.load)");
  return snap;
}

bool CheckpointFile::write(const Snapshot& snapshot) const {
  VIADUCT_SPAN("checkpoint.write");
  // Injected I/O failure: behave exactly like a full disk — no temp file
  // promoted, previous snapshot untouched.
  if (fault::shouldInject("checkpoint.write")) return false;

  const std::string tmp = tempPath();
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return false;
    os << kMagic << '\n';
    os << "key " << snapshot.configKey << '\n';
    os << "total " << snapshot.totalTrials << '\n';
    for (const auto& [idx, record] : snapshot.trials) {
      VIADUCT_CHECK(idx == record.trial);
      VIADUCT_CHECK(idx >= 0 && idx < snapshot.totalTrials);
      os << "trial " << idx << ' ' << outcomeChar(record.outcome) << ' ';
      writeDoubles(os, record.primary);
      os << " | ";
      writeDoubles(os, record.secondary);
      os << '\n';
    }
    os << "end " << snapshot.trials.size() << '\n';
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (!syncFile(tmp)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  syncParentDir(path_);
  VIADUCT_COUNTER_ADD("checkpoint.writes", 1);
  return true;
}

TrialRecorder::TrialRecorder(const Options& options, std::string configKey,
                             std::int64_t totalTrials)
    : options_(options) {
  snapshot_.configKey = std::move(configKey);
  snapshot_.totalTrials = totalTrials;
  if (options_.enabled()) VIADUCT_REQUIRE(totalTrials >= 1);
}

std::map<std::int64_t, TrialRecord> TrialRecorder::restore() {
  if (!options_.enabled() || !options_.resume) return {};
  const CheckpointFile file(options_.path);
  auto snap = file.load(snapshot_.configKey, snapshot_.totalTrials);
  if (!snap) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_.trials = std::move(snap->trials);
  resumedTrials_ = static_cast<int>(snapshot_.trials.size());
  if (resumedTrials_ > 0) {
    VIADUCT_COUNTER_ADD("checkpoint.resumed_trials", resumedTrials_);
    VIADUCT_INFO << "checkpoint: resumed " << resumedTrials_ << "/"
                 << snapshot_.totalTrials << " trials from " << options_.path;
  }
  return snapshot_.trials;
}

void TrialRecorder::record(TrialRecord record) {
  if (!options_.enabled()) return;
  VIADUCT_CHECK(record.trial >= 0 && record.trial < snapshot_.totalTrials);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t trial = record.trial;
  snapshot_.trials[trial] = std::move(record);
  ++sinceWrite_;
  if (options_.everyTrials > 0 && sinceWrite_ >= options_.everyTrials)
    writeLocked();
}

void TrialRecorder::finalize() {
  if (!options_.enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (sinceWrite_ > 0) writeLocked();
}

double TrialRecorder::secondsSinceLastWrite() const {
  const std::uint64_t last = lastWriteNs_.load(std::memory_order_relaxed);
  if (last == 0) return -1.0;
  return static_cast<double>(obs::nowNs() - last) * 1e-9;
}

void TrialRecorder::writeLocked() {
  lastWriteNs_.store(obs::nowNs(), std::memory_order_relaxed);
  const CheckpointFile file(options_.path);
  if (!file.write(snapshot_)) {
    VIADUCT_COUNTER_ADD("checkpoint.write_failures", 1);
    VIADUCT_WARN << "checkpoint write to " << options_.path
                 << " failed; continuing (previous snapshot, if any, is "
                    "still good)";
  }
  // Reset on attempt, not on success: a persistently failing disk must not
  // retry on every subsequent trial.
  sinceWrite_ = 0;
}

}  // namespace viaduct::checkpoint
