// viaduct::fault — failure policy.
//
// One plain-data knob bundle describing how the pipeline reacts when a
// solver, cache, or trial fails (injected via fault.h or organically).
// Threaded through ThermoSolverOptions, WoodburySolver::Options,
// PowerGridConfig, GridMcOptions, ViaArrayCharacterizationSpec, and
// AnalyzerConfig; see DESIGN.md §5.7 for the recovery ladder each consumer
// implements.
#pragma once

namespace viaduct::fault {

struct FailurePolicy {
  /// Master switch. Disabled, every consumer falls back to fail-fast:
  /// solver errors propagate and MC trials abort the run.
  bool enabled = true;

  /// CG recovery ladder: up to this many retries, each with the relative
  /// tolerance multiplied by `retryToleranceTighten` (< 1: the retry must
  /// beat a *stricter* target, so an accepted retry is at least as
  /// accurate as a clean first pass) and the iteration cap multiplied by
  /// `retryIterationGrowth`. Retries warm-start from the best iterate when
  /// one exists and restart from zero after a non-finite residual.
  int cgRetries = 1;
  double retryToleranceTighten = 0.1;
  double retryIterationGrowth = 2.0;

  /// After the retries, solve the same SPD system directly with sparse
  /// Cholesky (numerics/spd_solve.h) instead of failing.
  bool fallbackCgToCholesky = true;

  /// When a Woodbury low-rank update or an incrementally-updated solve
  /// fails, fold the accumulated updates into the base matrix and
  /// re-factorize instead of failing (the updated matrix is always kept
  /// numerically current, so a full re-factorization is always available).
  bool refactorOnWoodburyFailure = true;

  /// When a persisted characterization entry fails validation on load,
  /// recompute the characterization and rewrite the entry instead of
  /// failing.
  bool recomputeOnCacheCorruption = true;

  /// What both MC levels do with a trial whose solve chain failed beyond
  /// the recovery options above:
  ///   kAbort   — rethrow; the whole run fails (also the behavior when the
  ///              policy is disabled).
  ///   kDiscard — drop the trial; it is counted (obs + result fields) and
  ///              excluded from the TTF statistics.
  ///   kSalvage — keep the trial's progress up to the failure (grid MC: the
  ///              accumulated time; characterization: the partial trace).
  enum class TrialPolicy { kAbort, kDiscard, kSalvage };
  TrialPolicy trialPolicy = TrialPolicy::kDiscard;

  static FailurePolicy disabled() {
    FailurePolicy policy;
    policy.enabled = false;
    return policy;
  }
};

}  // namespace viaduct::fault
