// viaduct::fault — deterministic fault injection.
//
// A process-wide registry of named injection sites (e.g. "cg.nonconverge",
// "cholesky.factor"). Production code asks shouldInject(site) at the point
// where a failure could occur; the registry answers true when the site is
// armed and its trigger fires. Sites are armed with either
//   - a probability (fire when u < p, u drawn per query), or
//   - a fire-on-Nth-call trigger (fire on exactly the Nth query).
//
// Determinism contract: every decision is driven by the counter-based
// Rng(seed ^ hash(site), stream) streams (common/rng.h). The stream is the
// surrounding Monte Carlo trial index, published via ScopedStream — both MC
// levels open one scope per trial, so the Kth query of site S inside trial
// T always sees the same deviate, regardless of which worker thread runs
// the trial or how many threads exist. Work-item-indexed decisions
// (shouldInjectAt) are stateless: the decision is a pure function of
// (seed, site, index). Outside any scope, decisions use stream 0 with
// per-thread call counters (deterministic for single-threaded callers).
//
// Disarmed cost: one relaxed atomic load per query (same budget as the
// obs macros); nothing else runs until at least one site is armed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace viaduct::fault {

/// Thrown by injection sites that model a generic job failure (e.g.
/// "pool.job"). Sites that model a specific failure mode throw that mode's
/// real exception type instead (NumericalError for solver sites), so
/// recovery code cannot tell an injected failure from an organic one.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

struct Trigger {
  /// Fire when a per-query uniform deviate is < probability (0 disables).
  double probability = 0.0;
  /// Fire on exactly the nth query of the site within the current stream
  /// scope, 1-based (0 disables). Both may be set; either firing fires.
  std::int64_t nth = 0;
};

struct SiteStatus {
  std::string site;
  Trigger trigger;
  bool armed = false;
  std::uint64_t fires = 0;
};

class Registry {
 public:
  /// The process-wide registry. First call parses the VIADUCT_FAULTS
  /// environment variable (same grammar as configure()), so armed faults
  /// reach any binary without plumbing.
  static Registry& instance();

  void arm(std::string_view site, const Trigger& trigger);
  void disarm(std::string_view site);
  void disarmAll();

  /// Base seed mixed into every site stream (default 0).
  void setSeed(std::uint64_t seed);
  std::uint64_t seed() const;

  /// Parses and applies a fault spec:
  ///   "seed=42;cg.nonconverge:p=0.05;cholesky.factor:nth=3"
  /// Segments are ';'-separated; "seed=N" sets the seed, every other
  /// segment is "site:trigger[,trigger]" with triggers "p=<float>" or
  /// "nth=<int>". Throws ParseError on malformed input.
  void configure(std::string_view spec);

  bool anyArmed() const {
    return armedCount_.load(std::memory_order_relaxed) > 0;
  }

  /// Lifetime fire count of one site (0 if never armed).
  std::uint64_t fireCount(std::string_view site) const;
  std::uint64_t totalFires() const;

  /// Every site ever armed (including since-disarmed ones), name order.
  std::vector<SiteStatus> sites() const;

  /// Human-readable one-line digest ("cg.nonconverge[p=0.05] fired 12; …"),
  /// empty when nothing was ever armed.
  std::string summary() const;

  /// Core decision: true when `site` is armed and its trigger fires for
  /// this query. Consumes exactly one deviate of the site's stream per
  /// query, so call ordinals stay aligned between runs.
  bool shouldFire(std::string_view site);

  /// Stateless decision keyed on a work-item index (for call sites whose
  /// execution order is scheduling-dependent, e.g. pool chunks): fires on
  /// probability with Rng(seed ^ hash(site), index), or when
  /// index + 1 == nth.
  bool shouldFireAt(std::string_view site, std::uint64_t index);

 private:
  struct Site;
  Registry() = default;
  Site* findArmed(std::string_view site, Trigger* trigger,
                  std::uint64_t* seedOut) const;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Site>, std::less<>> sites_;
  std::atomic<int> armedCount_{0};
  /// Bumped on every arm/disarm/setSeed so cached per-thread site state
  /// resets instead of leaking call counts across configurations.
  std::atomic<std::uint64_t> epoch_{1};
  std::uint64_t seed_ = 0;  // guarded by mutex_
};

/// Convenience wrappers over Registry::instance(); the disarmed fast path
/// is a single relaxed load.
inline bool shouldInject(std::string_view site) {
  Registry& r = Registry::instance();
  return r.anyArmed() && r.shouldFire(site);
}

inline bool shouldInjectAt(std::string_view site, std::uint64_t index) {
  Registry& r = Registry::instance();
  return r.anyArmed() && r.shouldFireAt(site, index);
}

/// Publishes the Monte Carlo trial index as the current thread's fault
/// stream for the scope's lifetime. Nestable; restores the previous scope
/// on destruction. Each construction starts a fresh decision sequence for
/// every site (call counters reset), so a trial's injection schedule is a
/// pure function of (registry config, trial index).
class ScopedStream {
 public:
  explicit ScopedStream(std::uint64_t stream);
  ~ScopedStream();
  ScopedStream(const ScopedStream&) = delete;
  ScopedStream& operator=(const ScopedStream&) = delete;

 private:
  std::uint64_t prevStream_;
  std::uint64_t prevGeneration_;
};

/// The stream published by the innermost ScopedStream (0 outside any).
std::uint64_t currentStream();

}  // namespace viaduct::fault
