#include "fault/fault.h"

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "obs/obs.h"

namespace viaduct::fault {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

struct Scope {
  std::uint64_t stream = 0;
  std::uint64_t generation = 0;
};
thread_local Scope t_scope;

/// Monotone id handed to each ScopedStream so per-site call counters reset
/// at every scope entry (two scopes with the same trial index — e.g. two
/// consecutive MC runs — must not share counter state).
std::atomic<std::uint64_t> g_scopeGeneration{0};

}  // namespace

struct Registry::Site {
  std::string name;
  std::uint64_t hash = 0;
  Trigger trigger;
  bool armed = false;
  std::atomic<std::uint64_t> fires{0};
};

namespace {

/// Per-thread decision state of one site: the stream Rng and the call
/// counter, valid for one (epoch, scope) pair.
struct SiteState {
  std::uint64_t epoch = 0;
  std::uint64_t generation = ~std::uint64_t{0};
  std::uint64_t stream = ~std::uint64_t{0};
  std::uint64_t calls = 0;
  Rng rng{0};
};
thread_local std::unordered_map<const void*, SiteState> t_siteStates;

}  // namespace

Registry& Registry::instance() {
  // Leaked singleton: worker threads may consult the registry during
  // static destruction (pool teardown), so it must never be destroyed.
  static Registry* const registry = [] {
    auto* r = new Registry();
    if (const char* env = std::getenv("VIADUCT_FAULTS"); env && *env)
      r->configure(env);
    return r;
  }();
  return *registry;
}

void Registry::arm(std::string_view site, const Trigger& trigger) {
  VIADUCT_REQUIRE_MSG(!site.empty(), "fault site name must be non-empty");
  VIADUCT_REQUIRE_MSG(
      trigger.probability >= 0.0 && trigger.probability <= 1.0,
      "fault probability must be in [0, 1]");
  VIADUCT_REQUIRE_MSG(trigger.nth >= 0, "fault nth trigger must be >= 0");
  VIADUCT_REQUIRE_MSG(trigger.probability > 0.0 || trigger.nth > 0,
                      "fault trigger is a no-op (set p or nth)");
  std::unique_lock lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    auto s = std::make_unique<Site>();
    s->name = std::string(site);
    s->hash = fnv1a(site);
    it = sites_.emplace(s->name, std::move(s)).first;
  }
  if (!it->second->armed) armedCount_.fetch_add(1, std::memory_order_relaxed);
  it->second->armed = true;
  it->second->trigger = trigger;
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Registry::disarm(std::string_view site) {
  std::unique_lock lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second->armed) return;
  it->second->armed = false;
  armedCount_.fetch_sub(1, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Registry::disarmAll() {
  std::unique_lock lock(mutex_);
  for (auto& [name, site] : sites_) {
    if (site->armed) {
      site->armed = false;
      armedCount_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Registry::setSeed(std::uint64_t seed) {
  std::unique_lock lock(mutex_);
  seed_ = seed;
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Registry::seed() const {
  std::shared_lock lock(mutex_);
  return seed_;
}

void Registry::configure(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string_view segment =
        spec.substr(pos, semi == std::string_view::npos ? spec.size() - pos
                                                        : semi - pos);
    pos = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (segment.empty()) continue;

    if (segment.rfind("seed=", 0) == 0) {
      try {
        setSeed(std::stoull(std::string(segment.substr(5))));
      } catch (const std::exception&) {
        throw ParseError("fault spec: bad seed in '" + std::string(segment) +
                         "'");
      }
      continue;
    }

    const std::size_t colon = segment.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= segment.size()) {
      throw ParseError("fault spec: expected 'site:p=<f>' or 'site:nth=<n>' "
                       "in '" +
                       std::string(segment) + "'");
    }
    const std::string_view site = segment.substr(0, colon);
    Trigger trigger;
    std::size_t tpos = colon + 1;
    while (tpos <= segment.size()) {
      const std::size_t comma = segment.find(',', tpos);
      const std::string_view tok = segment.substr(
          tpos, comma == std::string_view::npos ? segment.size() - tpos
                                                : comma - tpos);
      tpos = comma == std::string_view::npos ? segment.size() + 1 : comma + 1;
      // Locale-independent trigger values (common/serialize): std::stod
      // under a comma LC_NUMERIC read "p=0.05" as p=0, silently disarming
      // the probability.
      const auto badTrigger = [&]() -> ParseError {
        return ParseError("fault spec: bad trigger '" + std::string(tok) +
                          "' for site '" + std::string(site) + "'");
      };
      if (tok.rfind("p=", 0) == 0) {
        const auto p = parseDoubleToken(tok.substr(2));
        if (!p) throw badTrigger();
        trigger.probability = *p;
      } else if (tok.rfind("nth=", 0) == 0) {
        const auto nth = parseIntToken(tok.substr(4));
        if (!nth) throw badTrigger();
        trigger.nth = *nth;
      } else {
        throw badTrigger();
      }
    }
    try {
      arm(site, trigger);
    } catch (const PreconditionError& e) {
      throw ParseError("fault spec: " + std::string(e.what()));
    }
  }
}

std::uint64_t Registry::fireCount(std::string_view site) const {
  std::shared_lock lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

std::uint64_t Registry::totalFires() const {
  std::shared_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, site] : sites_)
    total += site->fires.load(std::memory_order_relaxed);
  return total;
}

std::vector<SiteStatus> Registry::sites() const {
  std::shared_lock lock(mutex_);
  std::vector<SiteStatus> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    out.push_back({name, site->trigger, site->armed,
                   site->fires.load(std::memory_order_relaxed)});
  }
  return out;
}

std::string Registry::summary() const {
  const auto all = sites();
  if (all.empty()) return {};
  std::ostringstream os;
  bool first = true;
  for (const auto& s : all) {
    if (!first) os << "; ";
    first = false;
    os << s.site << "[";
    if (s.trigger.probability > 0.0) os << "p=" << s.trigger.probability;
    if (s.trigger.nth > 0)
      os << (s.trigger.probability > 0.0 ? "," : "") << "nth=" << s.trigger.nth;
    os << (s.armed ? "]" : ",disarmed]") << " fired " << s.fires;
  }
  return os.str();
}

Registry::Site* Registry::findArmed(std::string_view site, Trigger* trigger,
                                    std::uint64_t* seedOut) const {
  std::shared_lock lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second->armed) return nullptr;
  *trigger = it->second->trigger;
  *seedOut = seed_;
  return it->second.get();
}

bool Registry::shouldFire(std::string_view site) {
  Trigger trigger;
  std::uint64_t seed = 0;
  Site* const s = findArmed(site, &trigger, &seed);
  if (s == nullptr) return false;

  SiteState& st = t_siteStates[s];
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (st.epoch != epoch || st.generation != t_scope.generation ||
      st.stream != t_scope.stream) {
    st.epoch = epoch;
    st.generation = t_scope.generation;
    st.stream = t_scope.stream;
    st.calls = 0;
    st.rng = Rng(seed ^ s->hash, t_scope.stream);
  }
  ++st.calls;
  const double u = st.rng.uniform();  // one deviate per query, always
  const bool fire =
      (trigger.nth > 0 && st.calls == static_cast<std::uint64_t>(trigger.nth)) ||
      (trigger.probability > 0.0 && u < trigger.probability);
  if (fire) {
    s->fires.fetch_add(1, std::memory_order_relaxed);
    VIADUCT_COUNTER_ADD("fault.injected", 1);
  }
  return fire;
}

bool Registry::shouldFireAt(std::string_view site, std::uint64_t index) {
  Trigger trigger;
  std::uint64_t seed = 0;
  Site* const s = findArmed(site, &trigger, &seed);
  if (s == nullptr) return false;

  bool fire = trigger.nth > 0 &&
              index + 1 == static_cast<std::uint64_t>(trigger.nth);
  if (!fire && trigger.probability > 0.0) {
    Rng rng(seed ^ s->hash, index);
    fire = rng.uniform() < trigger.probability;
  }
  if (fire) {
    s->fires.fetch_add(1, std::memory_order_relaxed);
    VIADUCT_COUNTER_ADD("fault.injected", 1);
  }
  return fire;
}

ScopedStream::ScopedStream(std::uint64_t stream)
    : prevStream_(t_scope.stream), prevGeneration_(t_scope.generation) {
  t_scope.stream = stream;
  t_scope.generation =
      g_scopeGeneration.fetch_add(1, std::memory_order_relaxed) + 1;
}

ScopedStream::~ScopedStream() {
  t_scope.stream = prevStream_;
  t_scope.generation = prevGeneration_;
}

std::uint64_t currentStream() { return t_scope.stream; }

}  // namespace viaduct::fault
