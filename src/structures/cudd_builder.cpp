#include "structures/cudd_builder.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace viaduct {

std::string patternName(IntersectionPattern p) {
  switch (p) {
    case IntersectionPattern::kPlus:
      return "Plus";
    case IntersectionPattern::kT:
      return "T";
    case IntersectionPattern::kL:
      return "L";
  }
  return "?";
}

double ViaArraySpec::viaSide() const {
  VIADUCT_REQUIRE(n >= 1 && effectiveArea > 0.0);
  return std::sqrt(effectiveArea) / static_cast<double>(n);
}

double ViaArraySpec::pitch() const {
  VIADUCT_REQUIRE(minSpacing >= 0.0);
  return viaSide() + std::max(viaSide(), minSpacing);
}

double ViaArraySpec::span() const {
  // n vias of side s with (n-1) gaps of size (pitch - s) = s.
  return static_cast<double>(n) * viaSide() +
         static_cast<double>(n - 1) * (pitch() - viaSide());
}

double StackSpec::totalHeight() const {
  return substrate + ildBelow + linerLower + metalLower + capLower + via +
         linerUpper + metalUpper + capUpper + ildAbove;
}

namespace {

/// Splits a layer of given thickness into cells no thicker than maxCell.
void appendLayerCells(std::vector<double>& sizes, double thickness,
                      double maxCell) {
  VIADUCT_REQUIRE(thickness > 0.0);
  const int n = std::max(1, static_cast<int>(std::ceil(thickness / maxCell)));
  for (int i = 0; i < n; ++i) sizes.push_back(thickness / n);
}

}  // namespace

double BuiltStructure::viaRowCenterY(int r) const {
  VIADUCT_REQUIRE(r >= 0 && r < spec.viaArray.n);
  return arrayStartY + r * spec.viaArray.pitch() +
         0.5 * spec.viaArray.viaSide();
}

double BuiltStructure::viaGapCenterY(int r) const {
  VIADUCT_REQUIRE(r >= 0 && r + 1 < spec.viaArray.n);
  return arrayStartY + r * spec.viaArray.pitch() + spec.viaArray.viaSide() +
         0.5 * (spec.viaArray.pitch() - spec.viaArray.viaSide());
}

BuiltStructure buildViaArrayStructure(const ViaArrayStructureSpec& spec) {
  const double side = spec.viaArray.viaSide();
  VIADUCT_REQUIRE_MSG(spec.resolutionXy <= side * 1.0001,
                      "resolutionXy too coarse to resolve one via");
  VIADUCT_REQUIRE_MSG(spec.viaArray.span() <= spec.wireWidth * 1.0001,
                      "via array wider than the wire");
  VIADUCT_REQUIRE(spec.margin > 0.0);

  // Lateral extent and uniform x/y cells.
  const double extent = spec.wireWidth + 2.0 * spec.margin;
  const auto nxy = static_cast<Index>(std::round(extent / spec.resolutionXy));
  VIADUCT_REQUIRE(nxy >= 4);
  const double res = extent / static_cast<double>(nxy);

  // z cells per stack layer (metals get >= 2 cells, thin layers 1).
  const StackSpec& st = spec.stack;
  std::vector<double> zs;
  struct ZRange {
    double z0, z1;
  };
  auto addLayer = [&zs](double thickness, double maxCell) {
    const double z0 =
        zs.empty() ? 0.0
                   : [&] {
                       double acc = 0.0;
                       for (double h : zs) acc += h;
                       return acc;
                     }();
    appendLayerCells(zs, thickness, maxCell);
    double acc = 0.0;
    for (double h : zs) acc += h;
    return ZRange{z0, acc};
  };

  const ZRange zSub = addLayer(st.substrate, 0.5e-6);
  const ZRange zIldBelow = addLayer(st.ildBelow, 0.3e-6);
  const ZRange zLinerLo = addLayer(st.linerLower, st.linerLower);
  const ZRange zMetalLo = addLayer(st.metalLower, 0.15e-6);
  const ZRange zCapLo = addLayer(st.capLower, st.capLower);
  const ZRange zVia = addLayer(st.via, 0.25e-6);
  const ZRange zLinerUp = addLayer(st.linerUpper, st.linerUpper);
  const ZRange zMetalUp = addLayer(st.metalUpper, 0.15e-6);
  const ZRange zCapUp = addLayer(st.capUpper, st.capUpper);
  const ZRange zIldAbove = addLayer(st.ildAbove, 0.3e-6);
  (void)zIldAbove;

  BuiltStructure built{
      .grid = VoxelGrid(
          std::vector<double>(static_cast<std::size_t>(nxy), res),
          std::vector<double>(static_cast<std::size_t>(nxy), res), zs,
          MaterialId::kSiCOH),
      .spec = spec,
      .centerX = 0.0,
      .centerY = 0.0,
      .arrayStartX = 0.0,
      .arrayStartY = 0.0,
      .zMetalLower0 = 0.0,
      .zMetalLower1 = 0.0,
      .zNucleationPlane = 0.0,
      .zVia0 = 0.0,
      .zVia1 = 0.0,
      .vias = {},
  };
  VoxelGrid& g = built.grid;

  const double cx = 0.5 * extent;
  const double cy = 0.5 * extent;
  built.centerX = cx;
  built.centerY = cy;
  built.zMetalLower0 = zMetalLo.z0;
  built.zMetalLower1 = zMetalLo.z1;
  built.zNucleationPlane = zMetalLo.z1;
  built.zVia0 = zVia.z0;
  built.zVia1 = zVia.z1;

  const double inf = 10.0 * extent;
  const double w2 = 0.5 * spec.wireWidth;

  // Substrate.
  g.paintBox(-inf, inf, -inf, inf, zSub.z0, zSub.z1, MaterialId::kSilicon);

  // Lower wire (along x). Terminates just past the intersection for L.
  const bool lowerTerminates = spec.pattern == IntersectionPattern::kL;
  const double lowerX0 = -inf;
  const double lowerX1 = lowerTerminates ? cx + w2 : inf;
  g.paintBox(lowerX0, lowerX1, cy - w2, cy + w2, zLinerLo.z0, zLinerLo.z1,
             MaterialId::kTantalum);
  g.paintBox(lowerX0, lowerX1, cy - w2, cy + w2, zMetalLo.z0, zMetalLo.z1,
             MaterialId::kCopper);

  // Blanket capping layer above Mx.
  g.paintBox(-inf, inf, -inf, inf, zCapLo.z0, zCapLo.z1, MaterialId::kSiN);

  // Upper wire (along y). Terminates just past the intersection for T and L.
  const bool upperTerminates = spec.pattern != IntersectionPattern::kPlus;
  const double upperY0 = -inf;
  const double upperY1 = upperTerminates ? cy + w2 : inf;
  g.paintBox(cx - w2, cx + w2, upperY0, upperY1, zLinerUp.z0, zLinerUp.z1,
             MaterialId::kTantalum);
  g.paintBox(cx - w2, cx + w2, upperY0, upperY1, zMetalUp.z0, zMetalUp.z1,
             MaterialId::kCopper);

  // Blanket capping layer above Mx+1.
  g.paintBox(-inf, inf, -inf, inf, zCapUp.z0, zCapUp.z1, MaterialId::kSiN);

  // Via array: copper punching through capLower, via, and linerUpper.
  // The array origin is snapped to the voxel lattice so that equal-sized
  // vias paint equal voxel footprints (no half-voxel aliasing).
  const int n = spec.viaArray.n;
  const double pitch = spec.viaArray.pitch();
  auto snap = [res](double v) { return std::round(v / res) * res; };
  const double startX = snap(cx - 0.5 * spec.viaArray.span());
  const double startY = snap(cy - 0.5 * spec.viaArray.span());
  built.arrayStartX = startX;
  built.arrayStartY = startY;
  for (int row = 0; row < n; ++row) {
    for (int col = 0; col < n; ++col) {
      ViaFootprint v;
      v.row = row;
      v.col = col;
      v.x0 = startX + col * pitch;
      v.x1 = v.x0 + side;
      v.y0 = startY + row * pitch;
      v.y1 = v.y0 + side;
      v.interior = row > 0 && row < n - 1 && col > 0 && col < n - 1;
      g.paintBox(v.x0, v.x1, v.y0, v.y1, zCapLo.z0, zLinerUp.z1,
                 MaterialId::kCopper);
      built.vias.push_back(v);
    }
  }

  (void)zIldBelow;
  return built;
}

}  // namespace viaduct
