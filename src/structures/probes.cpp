#include "structures/probes.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace viaduct {

Index nucleationCellLayer(const BuiltStructure& built) {
  // The cell layer just below the Mx/cap interface.
  const double eps = 1e-12;
  return built.grid.cellAtZ(built.zMetalLower1 - eps);
}

Index cellRowAtY(const BuiltStructure& built, double y) {
  return built.grid.cellAtY(y);
}

ThermoSolver::Profile stressProfileAtY(const ThermoSolver& solver,
                                       const BuiltStructure& built,
                                       double y) {
  VIADUCT_REQUIRE(&solver.grid() == &built.grid);
  return solver.hydrostaticProfileX(cellRowAtY(built, y),
                                    nucleationCellLayer(built));
}

double peakStressUnderVia(const ThermoSolver& solver,
                          const BuiltStructure& built, const ViaFootprint& v) {
  VIADUCT_REQUIRE(&solver.grid() == &built.grid);
  const VoxelGrid& g = built.grid;
  const Index k = nucleationCellLayer(built);
  // The painter snaps via footprints to voxel centers, so probe the columns
  // actually painted as via copper in the via layer (this avoids half-voxel
  // aliasing between the nominal footprint and the voxelized one).
  const Index kVia = g.cellAtZ(0.5 * (built.zVia0 + built.zVia1));
  const Index i0 = g.cellAtX(v.x0 - 0.5 * g.cellSizeX(0));
  const Index i1 = std::min(g.nx(), g.cellAtX(v.x1 + 0.5 * g.cellSizeX(0)) + 1);
  const Index j0 = g.cellAtY(v.y0 - 0.5 * g.cellSizeY(0));
  const Index j1 = std::min(g.ny(), g.cellAtY(v.y1 + 0.5 * g.cellSizeY(0)) + 1);
  double peak = -std::numeric_limits<double>::infinity();
  for (Index j = j0; j < j1; ++j) {
    for (Index i = i0; i < i1; ++i) {
      if (g.material(i, j, kVia) != MaterialId::kCopper) continue;
      if (g.material(i, j, k) != MaterialId::kCopper) continue;
      peak = std::max(peak, solver.cellHydrostatic(i, j, k));
    }
  }
  VIADUCT_REQUIRE_MSG(std::isfinite(peak),
                      "no painted via copper found under the footprint");
  return peak;
}

std::vector<double> perViaPeakStress(const ThermoSolver& solver,
                                     const BuiltStructure& built) {
  std::vector<double> peaks;
  peaks.reserve(built.vias.size());
  for (const auto& v : built.vias)
    peaks.push_back(peakStressUnderVia(solver, built, v));
  return peaks;
}

}  // namespace viaduct
