// Cu dual-damascene structure builders.
//
// Paints the paper's Figure 2/5 geometry into a VoxelGrid: a silicon
// substrate, SiCOH ILD, a lower wire Mx (running along x), an upper wire
// Mx+1 (running along y), blanket Si3N4 capping layers above each metal,
// thin Ta liner layers beneath each metal, and an n×n via array at the
// wire intersection. The Plus/T/L intersection patterns of Figure 4/5 are
// realized by continuing or terminating the wires at the intersection.
//
// Resolution note: lateral Ta liners (~10 nm) are far below the voxel
// resolution used here and are omitted; horizontal liner layers are
// included as dedicated thin z-slices. This matches the dominant mechanics
// (vertical CTE-mismatch stack) while keeping the mesh tractable.
#pragma once

#include <string>
#include <vector>

#include "fea/voxel_grid.h"

namespace viaduct {

/// Mesh intersection patterns (Figure 4): Plus inside the mesh, T at an
/// edge, L at a corner.
enum class IntersectionPattern { kPlus, kT, kL };

std::string patternName(IntersectionPattern p);

/// n×n via array with a fixed total (effective) cross-section area, so
/// different n compare at equal electrical resistance (Figure 1/7 setup).
struct ViaArraySpec {
  int n = 4;
  /// Total via cross-section area [m²]; default 1 µm² as in the paper.
  double effectiveArea = 1.0e-12;

  /// Minimum via-to-via spacing rule [m]. The paper's arrays use
  /// gap == via side (minSpacing = 0 keeps that); its conclusion notes
  /// that real spacing rules may force larger arrays to occupy more area —
  /// set this to study that effect (bench/ablation_spacing_rules).
  double minSpacing = 0.0;

  /// Side length of one square via: sqrt(area)/n.
  double viaSide() const;
  /// Center-to-center pitch: side + max(side, minSpacing).
  double pitch() const;
  /// Full span of the array (n vias + (n-1) gaps).
  double span() const;
  int viaCount() const { return n * n; }
};

/// Layer thicknesses [m] of the simulated stack, bottom to top. Defaults
/// approximate upper-level (M7/M8-like) layers of a 32 nm-class stack.
struct StackSpec {
  double substrate = 1.0e-6;
  double ildBelow = 0.6e-6;
  double linerLower = 0.05e-6;
  double metalLower = 0.30e-6;
  double capLower = 0.10e-6;
  double via = 0.25e-6;
  double linerUpper = 0.05e-6;
  double metalUpper = 0.30e-6;
  double capUpper = 0.10e-6;
  double ildAbove = 0.5e-6;

  double totalHeight() const;
};

struct ViaArrayStructureSpec {
  ViaArraySpec viaArray;
  IntersectionPattern pattern = IntersectionPattern::kPlus;
  /// Power-grid wire width [m]; the paper uses 2 µm.
  double wireWidth = 2.0e-6;
  /// ILD margin beyond the intersection footprint on each side [m].
  double margin = 2.0e-6;
  /// Lateral voxel size [m]. Must resolve the via pitch: a via side should
  /// span >= 1 voxel. The builder validates this.
  double resolutionXy = 0.25e-6;
  StackSpec stack;
};

/// Footprint of one via in the built structure.
struct ViaFootprint {
  int row = 0;  // index along y
  int col = 0;  // index along x
  double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
  /// True for vias not on the array perimeter.
  bool interior = false;
};

struct BuiltStructure {
  VoxelGrid grid;
  ViaArrayStructureSpec spec;
  double centerX = 0.0, centerY = 0.0;
  /// Snapped lower-left corner of the via array (voxel-lattice aligned).
  double arrayStartX = 0.0, arrayStartY = 0.0;
  /// z range of the lower metal layer Mx.
  double zMetalLower0 = 0.0, zMetalLower1 = 0.0;
  /// z of the Mx/cap interface — the void-nucleation plane ([11], Fig. 3).
  double zNucleationPlane = 0.0;
  /// z range of the via layer (between the two metals).
  double zVia0 = 0.0, zVia1 = 0.0;
  std::vector<ViaFootprint> vias;

  /// y coordinate of the centerline of via row `r` (for profile probes:
  /// Figure 1's black arrow passes through a via row, the red arrow through
  /// the gap between rows).
  double viaRowCenterY(int r) const;
  /// y coordinate of the gap between via rows r and r+1.
  double viaGapCenterY(int r) const;
};

/// Builds the voxel model. Throws PreconditionError if the resolution
/// cannot represent the via array or the wire does not fit the domain.
BuiltStructure buildViaArrayStructure(const ViaArrayStructureSpec& spec);

}  // namespace viaduct
