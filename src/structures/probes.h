// Probing helpers connecting a built Cu DD structure to FEA results:
// where to look for the paper's quantities (stress profile beneath a via
// row, peak tensile stress under each via at the nucleation plane).
#pragma once

#include <vector>

#include "fea/thermo_solver.h"
#include "structures/cudd_builder.h"

namespace viaduct {

/// Cell z-layer index of the top of the lower metal Mx — the Cu/capping
/// interface where slit voids nucleate (paper Figure 3).
Index nucleationCellLayer(const BuiltStructure& built);

/// Cell row index (j) whose y-interval contains the given coordinate.
Index cellRowAtY(const BuiltStructure& built, double y);

/// Hydrostatic stress profile along x in the Mx top layer at a given y
/// (use built.viaRowCenterY(r) for the paper's "black arrow" probes and
/// built.viaGapCenterY(r) for the "red arrow" probes).
ThermoSolver::Profile stressProfileAtY(const ThermoSolver& solver,
                                       const BuiltStructure& built, double y);

/// Peak σ_H among the Mx copper cells directly beneath one via footprint
/// (the per-via thermomechanical stress σ_T of Eq. 1).
double peakStressUnderVia(const ThermoSolver& solver,
                          const BuiltStructure& built, const ViaFootprint& v);

/// Per-via peak σ_T for every via in the array, in built.vias order.
std::vector<double> perViaPeakStress(const ThermoSolver& solver,
                                     const BuiltStructure& built);

}  // namespace viaduct
