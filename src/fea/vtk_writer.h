// Legacy-VTK export of FEA results for visualization (ParaView/VisIt).
//
// Writes an ASCII RECTILINEAR_GRID dataset carrying the voxel material ids
// and hydrostatic/von-Mises stress as CELL_DATA and the displacement field
// as POINT_DATA vectors. Coordinates are emitted in micrometers so the
// files open at a sane scale.
#pragma once

#include <iosfwd>
#include <string>

#include "fea/thermo_solver.h"

namespace viaduct {

/// Writes the solved state to a stream. Requires solver.solved().
void writeVtk(const ThermoSolver& solver, std::ostream& os,
              const std::string& title = "viaduct FEA result");

/// Writes to a file; throws ParseError if the file cannot be created.
void writeVtkFile(const ThermoSolver& solver, const std::string& path,
                  const std::string& title = "viaduct FEA result");

}  // namespace viaduct
