#include "fea/hex8.h"

#include <cmath>

#include "common/check.h"

namespace viaduct {

namespace {

struct BMatrix {
  // dN/dx, dN/dy, dN/dz for each of the 8 nodes at one evaluation point.
  std::array<double, kHexNodes> dx{}, dy{}, dz{};
};

/// Shape-function gradients at parent point (xi, eta, zeta) for a box
/// element with physical size hx×hy×hz.
BMatrix shapeGradients(double xi, double eta, double zeta, double hx,
                       double hy, double hz) {
  BMatrix b;
  for (int i = 0; i < kHexNodes; ++i) {
    const double sx = (i & 1) ? 1.0 : -1.0;
    const double sy = (i & 2) ? 1.0 : -1.0;
    const double sz = (i & 4) ? 1.0 : -1.0;
    // dN/dxi = sx/8 (1 + sy*eta)(1 + sz*zeta); chain rule d(xi)/dx = 2/hx.
    b.dx[i] = (sx / 8.0) * (1.0 + sy * eta) * (1.0 + sz * zeta) * (2.0 / hx);
    b.dy[i] = (sy / 8.0) * (1.0 + sx * xi) * (1.0 + sz * zeta) * (2.0 / hy);
    b.dz[i] = (sz / 8.0) * (1.0 + sx * xi) * (1.0 + sy * eta) * (2.0 / hz);
  }
  return b;
}

/// Applies the isotropic constitutive matrix C (Voigt) to a strain vector.
std::array<double, 6> applyC(const Material& mat,
                             const std::array<double, 6>& strain) {
  const double lambda = mat.lameLambda();
  const double mu = mat.lameMu();
  const double trace = strain[0] + strain[1] + strain[2];
  std::array<double, 6> stress{};
  stress[0] = lambda * trace + 2.0 * mu * strain[0];
  stress[1] = lambda * trace + 2.0 * mu * strain[1];
  stress[2] = lambda * trace + 2.0 * mu * strain[2];
  stress[3] = mu * strain[3];
  stress[4] = mu * strain[4];
  stress[5] = mu * strain[5];
  return stress;
}

/// Strain at an evaluation point from nodal displacements (Voigt).
std::array<double, 6> strainAt(const BMatrix& b,
                               std::span<const double> ue) {
  std::array<double, 6> e{};
  for (int i = 0; i < kHexNodes; ++i) {
    const double ux = ue[3 * i + 0];
    const double uy = ue[3 * i + 1];
    const double uz = ue[3 * i + 2];
    e[0] += b.dx[i] * ux;
    e[1] += b.dy[i] * uy;
    e[2] += b.dz[i] * uz;
    e[3] += b.dy[i] * ux + b.dx[i] * uy;
    e[4] += b.dz[i] * uy + b.dy[i] * uz;
    e[5] += b.dz[i] * ux + b.dx[i] * uz;
  }
  return e;
}

}  // namespace

Hex8Operators computeHex8Operators(const Material& mat, double hx, double hy,
                                   double hz, double deltaT) {
  VIADUCT_REQUIRE(hx > 0.0 && hy > 0.0 && hz > 0.0);
  Hex8Operators ops;
  const double lambda = mat.lameLambda();
  const double mu = mat.lameMu();
  const double detJ = hx * hy * hz / 8.0;
  const double g = 1.0 / std::sqrt(3.0);
  // C * thermal strain: αΔT (3λ + 2μ) on the normal components.
  const double thermalStress =
      mat.ctePerK * deltaT * (3.0 * lambda + 2.0 * mu);

  for (int gp = 0; gp < 8; ++gp) {
    const double xi = (gp & 1) ? g : -g;
    const double eta = (gp & 2) ? g : -g;
    const double zeta = (gp & 4) ? g : -g;
    const BMatrix b = shapeGradients(xi, eta, zeta, hx, hy, hz);
    const double w = detJ;  // unit Gauss weights

    // K_e += Bᵀ C B w. Exploit C's isotropic block structure directly:
    // for nodes i, j and directions p, q the 3×3 block is
    //   K[i p][j q] = λ dN_i/dp dN_j/dq + μ dN_i/dq dN_j/dp
    //                + δ_pq μ Σ_r dN_i/dr dN_j/dr.
    const std::array<const std::array<double, 8>*, 3> grad = {&b.dx, &b.dy,
                                                              &b.dz};
    for (int i = 0; i < kHexNodes; ++i) {
      for (int j = 0; j < kHexNodes; ++j) {
        const double gdot = b.dx[i] * b.dx[j] + b.dy[i] * b.dy[j] +
                            b.dz[i] * b.dz[j];
        for (int p = 0; p < 3; ++p) {
          const double gip = (*grad[p])[i];
          for (int q = 0; q < 3; ++q) {
            const double gjq = (*grad[q])[j];
            const double giq = (*grad[q])[i];
            const double gjp = (*grad[p])[j];
            double v = lambda * gip * gjq + mu * giq * gjp;
            if (p == q) v += mu * gdot;
            ops.stiffness[(3 * i + p) * kHexDofs + (3 * j + q)] += v * w;
          }
        }
      }
    }

    // f_e += Bᵀ (C ε_th) w: only normal stress components contribute.
    for (int i = 0; i < kHexNodes; ++i) {
      ops.thermalLoad[3 * i + 0] += b.dx[i] * thermalStress * w;
      ops.thermalLoad[3 * i + 1] += b.dy[i] * thermalStress * w;
      ops.thermalLoad[3 * i + 2] += b.dz[i] * thermalStress * w;
    }
  }
  return ops;
}

std::array<double, kStrainComponents> hex8CentroidStress(
    const Material& mat, double hx, double hy, double hz, double deltaT,
    std::span<const double> elementDisplacements) {
  VIADUCT_REQUIRE(elementDisplacements.size() == kHexDofs);
  const BMatrix b = shapeGradients(0.0, 0.0, 0.0, hx, hy, hz);
  std::array<double, 6> strain = strainAt(b, elementDisplacements);
  const double th = mat.ctePerK * deltaT;
  strain[0] -= th;
  strain[1] -= th;
  strain[2] -= th;
  return applyC(mat, strain);
}

double hydrostatic(const std::array<double, kStrainComponents>& stress) {
  return (stress[0] + stress[1] + stress[2]) / 3.0;
}

double vonMises(const std::array<double, kStrainComponents>& stress) {
  const double sxx = stress[0], syy = stress[1], szz = stress[2];
  const double sxy = stress[3], syz = stress[4], szx = stress[5];
  return std::sqrt(0.5 * ((sxx - syy) * (sxx - syy) + (syy - szz) * (syy - szz) +
                          (szz - sxx) * (szz - sxx)) +
                   3.0 * (sxy * sxy + syz * syz + szx * szx));
}

}  // namespace viaduct
