// Assembled CSR view of the voxel stiffness operator.
//
// The matrix-free gather (VoxelElasticityOperator) is the memory-frugal
// default, but two consumers want the explicit matrix: the IC(0)
// factorization, and the multigrid level operators — a CSR SpMV streams
// the stiffness once per apply instead of re-gathering 24×24 element
// blocks, which makes the many small applies inside a V-cycle several
// times cheaper than the gather.
//
// Constrained dofs are identity rows; constrained columns are dropped from
// unconstrained rows (symmetric Dirichlet elimination), matching the
// matrix-free operator exactly. Assembly is node-gathered in two passes
// (row counts, then sorted fill), partitioned with a fixed grain so the
// arrays are bit-identical for any pool size.
#pragma once

#include <cstdint>
#include <span>

#include "common/thread_pool.h"
#include "fea/hex8.h"
#include "fea/voxel_grid.h"
#include "numerics/sparse.h"

namespace viaduct {

/// `constrained` is the per-dof Dirichlet mask (3 dof per node);
/// `cellOperators` the per-cell Hex8 stiffness, both sized to `grid`.
CsrMatrix assembleVoxelStiffnessCsr(
    const VoxelGrid& grid, std::span<const std::uint8_t> constrained,
    std::span<const Hex8Operators* const> cellOperators, ThreadPool* pool);

}  // namespace viaduct
