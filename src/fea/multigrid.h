// Geometric multigrid preconditioner for the voxel thermoelasticity solve.
//
// The FEA system is the pipeline's wall-clock wall: a fig7-sized solve is
// seconds of block-Jacobi-preconditioned CG whose iteration count grows
// with the mesh. This V-cycle exploits what the matrix-free operator
// already knows — the mesh is a structured voxel grid — to precondition CG
// with a mesh-independent hierarchy:
//
//   - 2× cell coarsening per axis (odd trailing cells merge into the last
//     coarse cell), so every level is again a VoxelGrid;
//   - coarse-level operators are Galerkin composites: each coarse cell's
//     24×24 stiffness is Σ PᵀK_child P over its child cells, with P the
//     trilinear interpolation from the coarse cell's corners evaluated at
//     the child's physical node coordinates. Because the global trilinear
//     prolongation restricted to an element inside one coarse cell only
//     involves that cell's 8 corners, this per-cell composite IS the true
//     global Galerkin (RAP) operator — it keeps material-interface jumps
//     that volume-averaged rediscretization would smear. Composites are
//     deduplicated by the 8-tuple of child operator pointers, so layered
//     stacks stay as compact per level as the fine grid;
//   - trilinear (tensor-product, coordinate-weighted, so nonuniform axes
//     are handled) prolongation; restriction is its transpose, gathered
//     per coarse node so the sweep is race-free and bit-identical for any
//     pool size;
//   - block-Jacobi-preconditioned Chebyshev smoothing (a fixed-degree
//     polynomial in D⁻¹A targeting the upper spectrum [λmax/eigRatio,
//     λmax]; symmetric and convergent on the whole spectrum, so the
//     V-cycle is a fixed SPD operator and CG stays CG — and per operator
//     apply it damps far more of the rough spectrum than damped Jacobi);
//   - a dense Cholesky coarse solve (DenseCholeskyFactor) once the level
//     drops under `coarseDofLimit` dof.
//
// Dirichlet handling matches the fine operator: constrained dofs are
// identity rows. Residuals entering a level are zeroed on constrained
// dofs, corrections leaving a level are zeroed again, and every smoother
// block is the identity on constrained components.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "fea/hex8.h"
#include "fea/stencil_operator.h"
#include "fea/voxel_grid.h"
#include "numerics/dense_cholesky.h"
#include "numerics/preconditioner.h"

namespace viaduct {

struct MultigridOptions {
  /// Chebyshev degree (= operator applies) of the pre/post smoother on the
  /// FINE level. Equal degrees keep the V-cycle symmetric (required for
  /// CG). The fine level owns almost all of the cycle's cost, so it smooths
  /// lightly and leans on the coarse correction.
  int preSmooth = 2;
  int postSmooth = 2;
  /// Chebyshev degrees on every coarser level, where an operator apply is
  /// ~8× cheaper per coarsening: stronger smoothing there buys a better
  /// coarse correction (fewer CG iterations) at little cost.
  int coarsePreSmooth = 3;
  int coarsePostSmooth = 3;
  /// The Chebyshev polynomial targets D⁻¹A eigenvalues in
  /// [λmax/eigRatio, safety·λmax]; λmax is estimated per level at setup
  /// with a fixed, deterministic power iteration, so the interval adapts
  /// to the material contrast instead of being hand-tuned. Larger
  /// eigRatio reaches deeper into the smooth spectrum (helping when the
  /// coarse correction is weakened by anisotropy) at the cost of less
  /// damping at the very top.
  double chebyshevEigRatio = 8.0;
  /// Headroom multiplier on the λmax estimate (the power iteration
  /// converges from below; eigenvalues above the interval would diverge).
  double lambdaMaxSafety = 1.1;
  /// Stop coarsening once a level has at most this many dof; that level is
  /// solved directly with dense Cholesky.
  Index coarseDofLimit = 1000;
  int maxLevels = 16;
};

/// One V-cycle per apply(). Scratch vectors are per-level and mutable:
/// concurrent apply() calls on the SAME instance are not supported (CG
/// applies its preconditioner serially; parallel characterizations each
/// build their own solver and hierarchy).
class VoxelStressMultigrid final : public Preconditioner {
 public:
  /// `cellOperators` are the fine grid's per-cell Hex8 stiffness operators
  /// (borrowed; must outlive the preconditioner — the ThermoSolver owns
  /// them for the fine level). `constrained` is the per-dof Dirichlet mask.
  VoxelStressMultigrid(const VoxelGrid& grid,
                       const std::vector<bool>& constrained,
                       const std::vector<const Hex8Operators*>& cellOperators,
                       const MultigridOptions& options, ThreadPool* pool);
  ~VoxelStressMultigrid() override;

  void apply(std::span<const double> r, std::span<double> z) const override;
  const char* name() const override { return "mg"; }

  /// Number of levels including the fine grid and the dense-solved
  /// coarsest one.
  int levelCount() const { return static_cast<int>(levels_.size()); }

  /// The level-0 stencil-compressed stiffness. In multigrid mode the solver
  /// also uses this as CG's operator, so the whole solve — matvec and
  /// preconditioner — runs on the compressed engine instead of re-gathering
  /// element blocks every apply.
  const NodeStencilOperator& fineOperator() const;

  /// Opaque per-level data; public so the implementation's file-local
  /// kernels (operator apply, smoother, λmax estimator) can take it.
  struct Level;

 private:
  void buildHierarchy(const VoxelGrid& fineGrid,
                      const std::vector<bool>& constrained,
                      const std::vector<const Hex8Operators*>& cellOperators);
  void vcycle(std::size_t level, std::span<const double> r,
              std::span<double> z) const;
  void smooth(const Level& level, std::span<const double> r,
              std::span<double> z, int steps, bool zeroGuess) const;

  MultigridOptions options_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<Level>> levels_;
  DenseCholeskyFactor coarseFactor_;
};

}  // namespace viaduct
