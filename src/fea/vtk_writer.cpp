#include "fea/vtk_writer.h"

#include <fstream>
#include <ostream>

#include "common/check.h"
#include "common/units.h"

namespace viaduct {

void writeVtk(const ThermoSolver& solver, std::ostream& os,
              const std::string& title) {
  VIADUCT_REQUIRE_MSG(solver.solved(), "solve() before exporting");
  const VoxelGrid& g = solver.grid();

  os << "# vtk DataFile Version 3.0\n" << title << "\nASCII\n";
  os << "DATASET RECTILINEAR_GRID\n";
  os << "DIMENSIONS " << g.nx() + 1 << ' ' << g.ny() + 1 << ' ' << g.nz() + 1
     << '\n';

  os << "X_COORDINATES " << g.nx() + 1 << " double\n";
  for (Index i = 0; i <= g.nx(); ++i) os << g.nodeX(i) / units::um << ' ';
  os << "\nY_COORDINATES " << g.ny() + 1 << " double\n";
  for (Index j = 0; j <= g.ny(); ++j) os << g.nodeY(j) / units::um << ' ';
  os << "\nZ_COORDINATES " << g.nz() + 1 << " double\n";
  for (Index k = 0; k <= g.nz(); ++k) os << g.nodeZ(k) / units::um << ' ';
  os << '\n';

  os << "CELL_DATA " << g.cellCount() << '\n';
  os << "SCALARS material int 1\nLOOKUP_TABLE default\n";
  for (Index k = 0; k < g.nz(); ++k)
    for (Index j = 0; j < g.ny(); ++j)
      for (Index i = 0; i < g.nx(); ++i)
        os << static_cast<int>(g.material(i, j, k)) << '\n';

  os << "SCALARS sigma_h_mpa double 1\nLOOKUP_TABLE default\n";
  for (Index k = 0; k < g.nz(); ++k)
    for (Index j = 0; j < g.ny(); ++j)
      for (Index i = 0; i < g.nx(); ++i)
        os << solver.cellHydrostatic(i, j, k) / units::MPa << '\n';

  os << "SCALARS von_mises_mpa double 1\nLOOKUP_TABLE default\n";
  for (Index k = 0; k < g.nz(); ++k)
    for (Index j = 0; j < g.ny(); ++j)
      for (Index i = 0; i < g.nx(); ++i)
        os << vonMises(solver.cellStress(i, j, k)) / units::MPa << '\n';

  os << "POINT_DATA " << g.nodeCount() << '\n';
  os << "VECTORS displacement_nm double\n";
  for (Index k = 0; k <= g.nz(); ++k) {
    for (Index j = 0; j <= g.ny(); ++j) {
      for (Index i = 0; i <= g.nx(); ++i) {
        const auto u = solver.displacement(i, j, k);
        os << u[0] / units::nm << ' ' << u[1] / units::nm << ' '
           << u[2] / units::nm << '\n';
      }
    }
  }
}

void writeVtkFile(const ThermoSolver& solver, const std::string& path,
                  const std::string& title) {
  std::ofstream os(path);
  if (!os) throw ParseError("cannot create VTK file: " + path);
  writeVtk(solver, os, title);
}

}  // namespace viaduct
