#include "fea/voxel_grid.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace viaduct {

namespace {
std::vector<double> prefixCoords(const std::vector<double>& sizes) {
  std::vector<double> coords(sizes.size() + 1, 0.0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    VIADUCT_REQUIRE_MSG(sizes[i] > 0.0, "cell sizes must be positive");
    coords[i + 1] = coords[i] + sizes[i];
  }
  return coords;
}

Index cellAt(const std::vector<double>& coords, double v) {
  // coords has n+1 entries; return clamped cell index in [0, n).
  const auto it = std::upper_bound(coords.begin(), coords.end(), v);
  auto idx = static_cast<std::ptrdiff_t>(it - coords.begin()) - 1;
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(coords.size()) - 2);
  return static_cast<Index>(idx);
}
}  // namespace

VoxelGrid::VoxelGrid(std::vector<double> cellSizesX,
                     std::vector<double> cellSizesY,
                     std::vector<double> cellSizesZ, MaterialId fill)
    : hx_(std::move(cellSizesX)),
      hy_(std::move(cellSizesY)),
      hz_(std::move(cellSizesZ)) {
  VIADUCT_REQUIRE(!hx_.empty() && !hy_.empty() && !hz_.empty());
  xCoord_ = prefixCoords(hx_);
  yCoord_ = prefixCoords(hy_);
  zCoord_ = prefixCoords(hz_);
  materials_.assign(static_cast<std::size_t>(cellCount()), fill);
}

VoxelGrid VoxelGrid::uniform(Index nx, Index ny, Index nz, double hx,
                             double hy, double hz, MaterialId fill) {
  VIADUCT_REQUIRE(nx > 0 && ny > 0 && nz > 0);
  return VoxelGrid(std::vector<double>(static_cast<std::size_t>(nx), hx),
                   std::vector<double>(static_cast<std::size_t>(ny), hy),
                   std::vector<double>(static_cast<std::size_t>(nz), hz),
                   fill);
}

Index VoxelGrid::cellIndex(Index i, Index j, Index k) const {
  VIADUCT_REQUIRE(i >= 0 && i < nx() && j >= 0 && j < ny() && k >= 0 &&
                  k < nz());
  return (k * ny() + j) * nx() + i;
}

Index VoxelGrid::nodeIndex(Index i, Index j, Index k) const {
  VIADUCT_REQUIRE(i >= 0 && i <= nx() && j >= 0 && j <= ny() && k >= 0 &&
                  k <= nz());
  return (k * (ny() + 1) + j) * (nx() + 1) + i;
}

MaterialId VoxelGrid::material(Index i, Index j, Index k) const {
  return materials_[static_cast<std::size_t>(cellIndex(i, j, k))];
}

void VoxelGrid::setMaterial(Index i, Index j, Index k, MaterialId m) {
  materials_[static_cast<std::size_t>(cellIndex(i, j, k))] = m;
}

void VoxelGrid::paintBox(double x0, double x1, double y0, double y1, double z0,
                         double z1, MaterialId m) {
  VIADUCT_REQUIRE(x0 <= x1 && y0 <= y1 && z0 <= z1);
  for (Index k = 0; k < nz(); ++k) {
    const double cz = cellCenterZ(k);
    if (cz < z0 || cz >= z1) continue;
    for (Index j = 0; j < ny(); ++j) {
      const double cy = cellCenterY(j);
      if (cy < y0 || cy >= y1) continue;
      for (Index i = 0; i < nx(); ++i) {
        const double cx = cellCenterX(i);
        if (cx < x0 || cx >= x1) continue;
        setMaterial(i, j, k, m);
      }
    }
  }
}

std::pair<Index, Index> VoxelGrid::zLayerRange(double z0, double z1) const {
  Index k0 = nz(), k1 = 0;
  for (Index k = 0; k < nz(); ++k) {
    const double lo = nodeZ(k);
    const double hi = nodeZ(k + 1);
    if (hi > z0 + 1e-15 && lo < z1 - 1e-15) {
      k0 = std::min(k0, k);
      k1 = std::max(k1, k + 1);
    }
  }
  if (k0 >= k1) return {0, 0};
  return {k0, k1};
}

Index VoxelGrid::cellAtX(double x) const { return cellAt(xCoord_, x); }
Index VoxelGrid::cellAtY(double y) const { return cellAt(yCoord_, y); }
Index VoxelGrid::cellAtZ(double z) const { return cellAt(zCoord_, z); }

double VoxelGrid::materialFraction(MaterialId m) const {
  const auto n = static_cast<double>(materials_.size());
  const auto c = std::count(materials_.begin(), materials_.end(), m);
  return static_cast<double>(c) / n;
}

}  // namespace viaduct
