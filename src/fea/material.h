// Isotropic linear-elastic materials for the Cu dual-damascene stack.
// Properties are Table 1 of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace viaduct {

/// Isotropic material: Young's modulus [Pa], Poisson ratio, CTE [1/K].
struct Material {
  std::string name;
  double youngsModulusPa = 0.0;
  double poissonRatio = 0.0;
  double ctePerK = 0.0;

  double lameLambda() const;
  double lameMu() const;
  double bulkModulus() const;
};

/// Material identifiers used by the voxel geometry builders.
enum class MaterialId : std::uint8_t {
  kSilicon = 0,   // substrate
  kCopper = 1,    // metal bulk
  kSiCOH = 2,     // inter-layer dielectric (low-k)
  kTantalum = 3,  // barrier/liner
  kSiN = 4,       // Si3N4 capping
};

inline constexpr int kMaterialCount = 5;

/// The paper's Table 1 values.
const Material& materialProperties(MaterialId id);

/// All materials, indexable by static_cast<int>(MaterialId).
const std::array<Material, kMaterialCount>& materialTable();

}  // namespace viaduct
