#include "fea/stencil_operator.h"

#include <map>

#include "common/check.h"
#include "obs/obs.h"

namespace viaduct {

namespace {
// Same fixed node grain as the other FEA kernels.
constexpr std::int64_t kNodeGrain = 256;
}  // namespace

NodeStencilOperator::NodeStencilOperator(
    const VoxelGrid& grid, std::span<const std::uint8_t> constrained,
    std::span<const Hex8Operators* const> cellOperators, ThreadPool* pool)
    : nodes_(grid.nodeCount()),
      nx_(grid.nx()),
      ny_(grid.ny()),
      nz_(grid.nz()),
      pool_(pool),
      constrained_(constrained.begin(), constrained.end()) {
  VIADUCT_SPAN("fea.stencil_build");
  VIADUCT_REQUIRE(constrained.size() == static_cast<std::size_t>(nodes_) * 3 &&
                  cellOperators.size() ==
                      static_cast<std::size_t>(grid.cellCount()));

  // Halo layout: one ghost node ring on every side, always zero, so the
  // apply sweep needs no bounds checks.
  const std::ptrdiff_t hRow = nx_ + 3;
  const std::ptrdiff_t hSlab = hRow * (ny_ + 3);
  for (int dk = -1; dk <= 1; ++dk)
    for (int dj = -1; dj <= 1; ++dj)
      for (int di = -1; di <= 1; ++di)
        offsets_[static_cast<std::size_t>((di + 1) + 3 * (dj + 1) +
                                          9 * (dk + 1))] =
            di + hRow * dj + hSlab * dk;
  halo_.assign(static_cast<std::size_t>(hSlab) *
                   static_cast<std::size_t>(nz_ + 3) * 3,
               0.0);

  // Dictionary build: the stencil of a node is a function of its 8
  // adjacent element operators only (constraints are handled outside the
  // stencil, see apply()), so the key is those 8 pointers in fixed
  // relative order. The per-node key computation and local deduplication
  // run chunk-parallel; the global id assignment merges the chunk-local
  // dictionaries in chunk order, which visits first occurrences in node
  // order — the resulting ids and table are identical to a serial scan for
  // every pool size.
  patternId_.resize(static_cast<std::size_t>(nodes_));
  const Index nodesPerRow = nx_ + 1;
  const Index nodesPerSlab = nodesPerRow * (ny_ + 1);
  using Key = std::array<const Hex8Operators*, 8>;
  const auto nodeKey = [&](Index node) {
    const Index K = node / nodesPerSlab;
    const Index rem = node % nodesPerSlab;
    const Index J = rem / nodesPerRow;
    const Index I = rem % nodesPerRow;
    Key key{};
    for (int dk = -1; dk <= 0; ++dk)
      for (int dj = -1; dj <= 0; ++dj)
        for (int di = -1; di <= 0; ++di) {
          const Index ci = I + di, cj = J + dj, ck = K + dk;
          if (ci < 0 || ci >= nx_ || cj < 0 || cj >= ny_ || ck < 0 ||
              ck >= nz_)
            continue;
          key[static_cast<std::size_t>((di + 1) + 2 * (dj + 1) +
                                       4 * (dk + 1))] =
              cellOperators[static_cast<std::size_t>(
                  grid.cellIndex(ci, cj, ck))];
        }
    return key;
  };

  struct ChunkDict {
    std::vector<Key> firstSeen;    // local keys in first-occurrence order
    std::vector<Index> localId;    // per node in the chunk
  };
  const std::int64_t chunkCount =
      (nodes_ + kNodeGrain - 1) / kNodeGrain;
  std::vector<ChunkDict> chunks(static_cast<std::size_t>(chunkCount));
  parallelFor(pool, 0, chunkCount, 1, [&](std::int64_t c) {
    ChunkDict& cd = chunks[static_cast<std::size_t>(c)];
    const Index begin = static_cast<Index>(c * kNodeGrain);
    const Index end = std::min<Index>(begin + kNodeGrain, nodes_);
    cd.localId.resize(static_cast<std::size_t>(end - begin));
    std::map<Key, Index> local;
    for (Index node = begin; node < end; ++node) {
      const auto [it, inserted] =
          local.emplace(nodeKey(node), static_cast<Index>(local.size()));
      if (inserted) cd.firstSeen.push_back(it->first);
      cd.localId[static_cast<std::size_t>(node - begin)] = it->second;
    }
  });

  std::map<Key, Index> dict;
  for (std::int64_t c = 0; c < chunkCount; ++c) {
    ChunkDict& cd = chunks[static_cast<std::size_t>(c)];
    std::vector<Index> globalId(cd.firstSeen.size());
    for (std::size_t l = 0; l < cd.firstSeen.size(); ++l) {
      const Key& key = cd.firstSeen[l];
      const auto [it, inserted] =
          dict.emplace(key, static_cast<Index>(dict.size()));
      if (inserted) {
        table_.resize(table_.size() + kStencilSize, 0.0);
        double* st = &table_[table_.size() - kStencilSize];
        for (int dk = -1; dk <= 0; ++dk)
          for (int dj = -1; dj <= 0; ++dj)
            for (int di = -1; di <= 0; ++di) {
              const Hex8Operators* ops =
                  key[static_cast<std::size_t>((di + 1) + 2 * (dj + 1) +
                                               4 * (dk + 1))];
              if (ops == nullptr) continue;
              // The center node's local index in this cell.
              const int n = -di + 2 * -dj + 4 * -dk;
              for (int m = 0; m < kHexNodes; ++m) {
                const int t = (di + (m & 1) + 1) +
                              3 * (dj + ((m >> 1) & 1) + 1) +
                              9 * (dk + ((m >> 2) & 1) + 1);
                for (int p = 0; p < 3; ++p)
                  for (int q = 0; q < 3; ++q)
                    st[t * 9 + p * 3 + q] +=
                        ops->stiffness[static_cast<std::size_t>(3 * n + p) *
                                           kHexDofs +
                                       static_cast<std::size_t>(3 * m + q)];
              }
            }
      }
      globalId[l] = it->second;
    }
    const Index begin = static_cast<Index>(c * kNodeGrain);
    for (std::size_t i = 0; i < cd.localId.size(); ++i)
      patternId_[static_cast<std::size_t>(begin) + i] =
          globalId[static_cast<std::size_t>(cd.localId[i])];
    cd = ChunkDict{};  // release chunk memory as we go
  }
  VIADUCT_GAUGE_SET("fea.stencil_patterns",
                    static_cast<std::int64_t>(distinctStencils()));
}

void NodeStencilOperator::apply(std::span<const double> x,
                                std::span<double> y) const {
  VIADUCT_REQUIRE(x.size() == static_cast<std::size_t>(nodes_) * 3 &&
                  y.size() == x.size());
  const Index nodesPerRow = nx_ + 1;
  const Index nodesPerSlab = nodesPerRow * (ny_ + 1);
  const std::ptrdiff_t hRow = nx_ + 3;
  const std::ptrdiff_t hSlab = hRow * (ny_ + 3);

  // Gather x into the halo with constrained dofs masked to zero (the
  // symmetric Dirichlet "dropped column"). Ghost entries stay zero.
  parallelFor(pool_, 0, nodes_, kNodeGrain, [&](std::int64_t ni) {
    const Index node = static_cast<Index>(ni);
    const Index K = node / nodesPerSlab;
    const Index rem = node % nodesPerSlab;
    const Index J = rem / nodesPerRow;
    const Index I = rem % nodesPerRow;
    const auto h = static_cast<std::size_t>((I + 1) + hRow * (J + 1) +
                                            hSlab * (K + 1));
    for (int d = 0; d < 3; ++d) {
      const auto dof = static_cast<std::size_t>(node) * 3 +
                       static_cast<std::size_t>(d);
      halo_[h * 3 + static_cast<std::size_t>(d)] =
          constrained_[dof] ? 0.0 : x[dof];
    }
  });

  parallelFor(pool_, 0, nodes_, kNodeGrain, [&](std::int64_t ni) {
    const Index node = static_cast<Index>(ni);
    const Index K = node / nodesPerSlab;
    const Index rem = node % nodesPerSlab;
    const Index J = rem / nodesPerRow;
    const Index I = rem % nodesPerRow;
    const auto h = static_cast<std::ptrdiff_t>(I + 1) + hRow * (J + 1) +
                   hSlab * (K + 1);
    const double* st =
        &table_[static_cast<std::size_t>(
                    patternId_[static_cast<std::size_t>(node)]) *
                kStencilSize];
    double a0 = 0.0, a1 = 0.0, a2 = 0.0;
    for (int t = 0; t < 27; ++t, st += 9) {
      const double* xb = &halo_[static_cast<std::size_t>(h + offsets_[t]) * 3];
      const double x0 = xb[0], x1 = xb[1], x2 = xb[2];
      a0 += st[0] * x0 + st[1] * x1 + st[2] * x2;
      a1 += st[3] * x0 + st[4] * x1 + st[5] * x2;
      a2 += st[6] * x0 + st[7] * x1 + st[8] * x2;
    }
    const auto dof = static_cast<std::size_t>(node) * 3;
    y[dof + 0] = constrained_[dof + 0] ? x[dof + 0] : a0;
    y[dof + 1] = constrained_[dof + 1] ? x[dof + 1] : a1;
    y[dof + 2] = constrained_[dof + 2] ? x[dof + 2] : a2;
  });
}

}  // namespace viaduct
