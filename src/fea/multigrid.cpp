#include "fea/multigrid.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <tuple>

#include "common/check.h"
#include "numerics/dense.h"
#include "obs/obs.h"

namespace viaduct {

namespace {

// Same node grain as the fine-level solver (thermo_solver.cpp), so chunk
// layouts follow the established determinism discipline.
constexpr std::int64_t kNodeGrain = 256;
constexpr std::int64_t kDofGrain = 3 * kNodeGrain;
constexpr int kPowerIterations = 10;

struct AxisTransfer {
  // Per fine axis node: the coarse cell it falls in and the linear weight
  // toward that cell's high node. Aligned nodes carry weight exactly 0 or 1
  // because the coarse node coordinates are copies of fine ones.
  std::vector<Index> c;
  std::vector<double> w;
};

AxisTransfer buildAxisTransfer(Index fineCells, Index coarseCells,
                               const std::vector<double>& fineCoord,
                               const std::vector<double>& coarseCoord) {
  AxisTransfer t;
  t.c.resize(static_cast<std::size_t>(fineCells) + 1);
  t.w.resize(static_cast<std::size_t>(fineCells) + 1);
  for (Index i = 0; i <= fineCells; ++i) {
    const Index c = std::min<Index>(i / 2, coarseCells - 1);
    const double x0 = coarseCoord[static_cast<std::size_t>(c)];
    const double x1 = coarseCoord[static_cast<std::size_t>(c) + 1];
    t.c[static_cast<std::size_t>(i)] = c;
    t.w[static_cast<std::size_t>(i)] =
        (fineCoord[static_cast<std::size_t>(i)] - x0) / (x1 - x0);
  }
  return t;
}

}  // namespace

struct VoxelStressMultigrid::Level {
  VoxelGrid grid;
  Index nodes = 0;

  // Per-dof Dirichlet mask (uint8 instead of vector<bool> for hot loops).
  std::vector<std::uint8_t> constrained;

  // Per-cell stiffness. Level 0 borrows the solver's operators; coarser
  // levels own theirs: Galerkin composites PᵀKP over the ≤8 children of a
  // coarse cell, deduplicated by the children's operator pointers (within a
  // level, a pointer uniquely identifies material and size, so equal keys
  // imply equal composites — uniform regions collapse to one entry).
  std::map<std::array<const Hex8Operators*, 8>, Hex8Operators> ownedOps;
  std::vector<const Hex8Operators*> cellOps;

  // Stencil-compressed stiffness; every level apply goes through it (the
  // coarsest level is solved dense instead).
  NodeStencilOperator op;

  // Inverted nodal 3×3 diagonal blocks (constrained dofs → identity).
  std::vector<double> blockInv;
  // Power-iteration estimate of λmax(D⁻¹A); the Chebyshev smoother targets
  // [λmax/eigRatio, safety·λmax].
  double lambdaMax = 1.0;

  // Transfer to the NEXT (coarser) level. Prolongation reads the per-axis
  // maps directly; restriction uses the reverse lists (CSR over coarse
  // nodes) so the transpose sweep gathers per coarse node — race-free and
  // bit-identical for any pool size.
  AxisTransfer tx, ty, tz;
  std::vector<Index> restrictPtr;      // coarseNodes + 1
  std::vector<Index> restrictFine;     // fine node indices
  std::vector<double> restrictWeight;  // matching trilinear weights

  // V-cycle scratch (one cycle at a time; see class comment). r/z hold the
  // restricted residual / coarse correction when this level is visited from
  // above; work is the residual buffer; smoothD/smoothAd carry the
  // Chebyshev direction vector and its operator image.
  mutable std::vector<double> r, z, work, smoothD, smoothAd;

  explicit Level(VoxelGrid g)
      : grid(std::move(g)), nodes(grid.nodeCount()) {}
};

namespace {

/// y = A x on one level: a deterministic row-partitioned SpMV over the
/// level's assembled stiffness (constrained dofs are identity rows there).
void applyLevelOperator(const VoxelStressMultigrid::Level& lvl,
                        std::span<const double> x, std::span<double> y,
                        ThreadPool* pool);

}  // namespace

VoxelStressMultigrid::VoxelStressMultigrid(
    const VoxelGrid& grid, const std::vector<bool>& constrained,
    const std::vector<const Hex8Operators*>& cellOperators,
    const MultigridOptions& options, ThreadPool* pool)
    : options_(options), pool_(pool) {
  VIADUCT_SPAN("fea.mg_setup");
  VIADUCT_REQUIRE(options_.preSmooth >= 1 && options_.postSmooth >= 1 &&
                  options_.coarsePreSmooth >= 1 &&
                  options_.coarsePostSmooth >= 1 &&
                  options_.chebyshevEigRatio > 1.0 &&
                  options_.lambdaMaxSafety >= 1.0 &&
                  options_.coarseDofLimit >= 81 && options_.maxLevels >= 1);
  buildHierarchy(grid, constrained, cellOperators);
  VIADUCT_GAUGE_SET("fea.mg_levels", levelCount());
}

VoxelStressMultigrid::~VoxelStressMultigrid() = default;

const NodeStencilOperator& VoxelStressMultigrid::fineOperator() const {
  return levels_.front()->op;
}

namespace {

void applyLevelOperator(const VoxelStressMultigrid::Level& lvl,
                        std::span<const double> x, std::span<double> y,
                        ThreadPool* /*pool*/) {
  lvl.op.apply(x, y);
}

/// Galerkin composite PᵀKP of a coarse cell from its children: P is the
/// trilinear interpolation from the coarse cell's 8 corners to a child's 8
/// corners (weights from physical coordinates, so merged trailing odd
/// cells and nonuniform axes are exact). Summation order is the fixed
/// (k, j, i) child order.
Hex8Operators galerkinCompositeOperator(
    const VoxelGrid& fg, const VoxelGrid& cg,
    const std::vector<const Hex8Operators*>& fineOps, Index ci, Index cj,
    Index ck) {
  Hex8Operators comp{};
  const double cx0 = cg.nodeX(ci), cx1 = cg.nodeX(ci + 1);
  const double cy0 = cg.nodeY(cj), cy1 = cg.nodeY(cj + 1);
  const double cz0 = cg.nodeZ(ck), cz1 = cg.nodeZ(ck + 1);
  for (Index k = ck * 2; k < std::min<Index>(ck * 2 + 2, fg.nz()); ++k)
    for (Index j = cj * 2; j < std::min<Index>(cj * 2 + 2, fg.ny()); ++j)
      for (Index i = ci * 2; i < std::min<Index>(ci * 2 + 2, fg.nx()); ++i) {
        const Hex8Operators& K =
            *fineOps[static_cast<std::size_t>(fg.cellIndex(i, j, k))];
        // Parametric coordinates of the child's low/high faces within the
        // coarse cell, per axis.
        const double ux[2] = {(fg.nodeX(i) - cx0) / (cx1 - cx0),
                              (fg.nodeX(i + 1) - cx0) / (cx1 - cx0)};
        const double vy[2] = {(fg.nodeY(j) - cy0) / (cy1 - cy0),
                              (fg.nodeY(j + 1) - cy0) / (cy1 - cy0)};
        const double wz[2] = {(fg.nodeZ(k) - cz0) / (cz1 - cz0),
                              (fg.nodeZ(k + 1) - cz0) / (cz1 - cz0)};
        // w[m][cc]: trilinear weight of coarse corner cc at child node m.
        double w[kHexNodes][kHexNodes];
        for (int m = 0; m < kHexNodes; ++m) {
          const double u = ux[m & 1], v = vy[(m >> 1) & 1],
                       s = wz[(m >> 2) & 1];
          for (int cc = 0; cc < kHexNodes; ++cc)
            w[m][cc] = ((cc & 1) ? u : 1.0 - u) *
                       (((cc >> 1) & 1) ? v : 1.0 - v) *
                       (((cc >> 2) & 1) ? s : 1.0 - s);
        }
        // T = K P, then comp += Pᵀ T.
        std::array<double, kHexDofs * kHexDofs> t{};
        for (int m = 0; m < kHexNodes; ++m)
          for (int cc = 0; cc < kHexNodes; ++cc) {
            const double wm = w[m][cc];
            if (wm == 0.0) continue;
            for (int r = 0; r < kHexDofs; ++r)
              for (int q = 0; q < 3; ++q)
                t[static_cast<std::size_t>(r) * kHexDofs + (3 * cc + q)] +=
                    wm * K.stiffness[static_cast<std::size_t>(r) * kHexDofs +
                                     (3 * m + q)];
          }
        for (int m = 0; m < kHexNodes; ++m)
          for (int cc = 0; cc < kHexNodes; ++cc) {
            const double wm = w[m][cc];
            if (wm == 0.0) continue;
            for (int p = 0; p < 3; ++p)
              for (int c2 = 0; c2 < kHexDofs; ++c2)
                comp.stiffness[static_cast<std::size_t>(3 * cc + p) *
                                   kHexDofs +
                               c2] +=
                    wm * t[static_cast<std::size_t>(3 * m + p) * kHexDofs +
                           c2];
          }
      }
  return comp;
}

/// z = D⁻¹ r with the level's inverted nodal blocks.
void applyBlockInverse(const VoxelStressMultigrid::Level& lvl,
                       std::span<const double> r, std::span<double> z,
                       ThreadPool* pool) {
  parallelFor(pool, 0, lvl.nodes, kNodeGrain, [&](std::int64_t n) {
    const double* m = &lvl.blockInv[static_cast<std::size_t>(n) * 9];
    const double* rn = &r[static_cast<std::size_t>(n) * 3];
    double* zn = &z[static_cast<std::size_t>(n) * 3];
    for (int p = 0; p < 3; ++p)
      zn[p] = m[p * 3] * rn[0] + m[p * 3 + 1] * rn[1] + m[p * 3 + 2] * rn[2];
  });
}

/// Assembles, inverts and stores the nodal 3×3 diagonal blocks of a level
/// (constrained rows/cols replaced by identity before inversion) — the same
/// construction as the fine solver's block-Jacobi preconditioner.
void buildLevelBlocks(VoxelStressMultigrid::Level& lvl, ThreadPool* pool) {
  const VoxelGrid& g = lvl.grid;
  const Index nodesPerRow = g.nx() + 1;
  const Index nodesPerSlab = nodesPerRow * (g.ny() + 1);
  lvl.blockInv.assign(static_cast<std::size_t>(lvl.nodes) * 9, 0.0);
  parallelFor(pool, 0, lvl.nodes, kNodeGrain, [&](std::int64_t ni) {
    const Index node = static_cast<Index>(ni);
    const Index K = node / nodesPerSlab;
    const Index rem = node % nodesPerSlab;
    const Index J = rem / nodesPerRow;
    const Index I = rem % nodesPerRow;
    double blk[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
    const Index k0 = std::max<Index>(K - 1, 0);
    const Index k1 = std::min<Index>(K, g.nz() - 1);
    const Index j0 = std::max<Index>(J - 1, 0);
    const Index j1 = std::min<Index>(J, g.ny() - 1);
    const Index i0 = std::max<Index>(I - 1, 0);
    const Index i1 = std::min<Index>(I, g.nx() - 1);
    for (Index ck = k0; ck <= k1; ++ck)
      for (Index cj = j0; cj <= j1; ++cj)
        for (Index ci = i0; ci <= i1; ++ci) {
          const int n = (I - ci) + 2 * (J - cj) + 4 * (K - ck);
          const Hex8Operators& ops =
              *lvl.cellOps[static_cast<std::size_t>(g.cellIndex(ci, cj, ck))];
          for (int p = 0; p < 3; ++p)
            for (int q = 0; q < 3; ++q)
              blk[p * 3 + q] +=
                  ops.stiffness[(3 * n + p) * kHexDofs + (3 * n + q)];
        }
    for (int d = 0; d < 3; ++d) {
      if (!lvl.constrained[node * 3 + d]) continue;
      for (int q = 0; q < 3; ++q) {
        blk[d * 3 + q] = 0.0;
        blk[q * 3 + d] = 0.0;
      }
      blk[d * 3 + d] = 1.0;
    }
    DenseMatrix m(3, 3);
    for (int p = 0; p < 3; ++p)
      for (int q = 0; q < 3; ++q) m(p, q) = blk[p * 3 + q];
    const DenseMatrix inv = m.solveMultiple(DenseMatrix::identity(3));
    double* out = &lvl.blockInv[static_cast<std::size_t>(node) * 9];
    for (int p = 0; p < 3; ++p)
      for (int q = 0; q < 3; ++q) out[p * 3 + q] = inv(p, q);
  });
}

/// Estimates λmax(D⁻¹A) on a level with a fixed-iteration power method from
/// a deterministic pseudo-random start vector (constrained dofs excluded:
/// they contribute the identity eigenvalue 1, never the max for these
/// systems). All reductions go through parallelReduce, so the estimate is
/// bit-identical for any pool size.
double estimateBlockJacobiLambdaMax(const VoxelStressMultigrid::Level& lvl,
                                    ThreadPool* pool) {
  const std::int64_t dofs = static_cast<std::int64_t>(lvl.nodes) * 3;
  std::vector<double> v(static_cast<std::size_t>(dofs));
  std::vector<double> av(static_cast<std::size_t>(dofs));
  parallelFor(pool, 0, dofs, kDofGrain, [&](std::int64_t i) {
    // Knuth multiplicative hash → [0.5, 1.5); avoids symmetric vectors that
    // could sit orthogonal to the dominant eigenvector.
    const std::uint64_t h =
        static_cast<std::uint64_t>(i) * 2654435761ull % 1024ull;
    v[static_cast<std::size_t>(i)] =
        lvl.constrained[static_cast<std::size_t>(i)]
            ? 0.0
            : 0.5 + static_cast<double>(h) / 1024.0;
  });
  auto squaredNorm = [&](const std::vector<double>& u) {
    return pool ? pool->parallelReduce(
                      0, dofs, kDofGrain, 0.0,
                      [&](std::int64_t b, std::int64_t e) {
                        double s = 0.0;
                        for (std::int64_t i = b; i < e; ++i)
                          s += u[static_cast<std::size_t>(i)] *
                               u[static_cast<std::size_t>(i)];
                        return s;
                      },
                      [](double a, double b) { return a + b; })
                : [&] {
                    double s = 0.0;
                    for (double x : u) s += x * x;
                    return s;
                  }();
  };
  double lambda = 1.0;
  for (int it = 0; it < kPowerIterations; ++it) {
    const double n2 = squaredNorm(v);
    if (!(n2 > 0.0)) break;
    const double invNorm = 1.0 / std::sqrt(n2);
    parallelFor(pool, 0, dofs, kDofGrain, [&](std::int64_t i) {
      v[static_cast<std::size_t>(i)] *= invNorm;
    });
    applyLevelOperator(lvl, v, av, pool);
    applyBlockInverse(lvl, av, av, pool);
    parallelFor(pool, 0, dofs, kDofGrain, [&](std::int64_t i) {
      if (lvl.constrained[static_cast<std::size_t>(i)])
        av[static_cast<std::size_t>(i)] = 0.0;
    });
    lambda = std::sqrt(squaredNorm(av));
    v.swap(av);
  }
  return std::max(lambda, 1.0);
}

}  // namespace

void VoxelStressMultigrid::buildHierarchy(
    const VoxelGrid& fineGrid, const std::vector<bool>& constrained,
    const std::vector<const Hex8Operators*>& cellOperators) {
  VIADUCT_REQUIRE(static_cast<Index>(cellOperators.size()) ==
                      fineGrid.cellCount() &&
                  static_cast<Index>(constrained.size()) ==
                      fineGrid.nodeCount() * 3);

  // Level 0 mirrors the fine solver: borrowed operators, converted mask.
  auto fine = std::make_unique<Level>(fineGrid);
  fine->constrained.resize(constrained.size());
  for (std::size_t i = 0; i < constrained.size(); ++i)
    fine->constrained[i] = constrained[i] ? 1 : 0;
  fine->cellOps = cellOperators;
  levels_.push_back(std::move(fine));

  while (static_cast<int>(levels_.size()) < options_.maxLevels) {
    Level& f = *levels_.back();
    const Index dofs = f.nodes * 3;
    if (dofs <= options_.coarseDofLimit) break;
    const VoxelGrid& fg = f.grid;
    if (fg.nx() <= 1 && fg.ny() <= 1 && fg.nz() <= 1) break;

    // Coarse geometry: pairwise-merged cell sizes per axis (a trailing odd
    // cell survives unmerged), so coarse node coordinates are exact copies
    // of fine ones and the axis transfer weights hit 0/1 exactly at
    // aligned nodes.
    std::vector<double> chx, chy, chz;
    chx.reserve(static_cast<std::size_t>((fg.nx() + 1) / 2));
    chy.reserve(static_cast<std::size_t>((fg.ny() + 1) / 2));
    chz.reserve(static_cast<std::size_t>((fg.nz() + 1) / 2));
    for (Index i = 0; i < fg.nx(); i += 2)
      chx.push_back(fg.cellSizeX(i) +
                    (i + 1 < fg.nx() ? fg.cellSizeX(i + 1) : 0.0));
    for (Index j = 0; j < fg.ny(); j += 2)
      chy.push_back(fg.cellSizeY(j) +
                    (j + 1 < fg.ny() ? fg.cellSizeY(j + 1) : 0.0));
    for (Index k = 0; k < fg.nz(); k += 2)
      chz.push_back(fg.cellSizeZ(k) +
                    (k + 1 < fg.nz() ? fg.cellSizeZ(k + 1) : 0.0));
    auto coarse = std::make_unique<Level>(VoxelGrid(chx, chy, chz));
    const VoxelGrid& cg = coarse->grid;

    // Coarse cell operators: Galerkin composites of the children,
    // deduplicated by the child-operator-pointer key (see Level::ownedOps).
    // Galerkin — rather than rediscretizing from averaged moduli — keeps
    // the coarse correction effective across the stack's material
    // interfaces, where averaging loses the jump and roughly doubles CG
    // iteration counts.
    const auto coarseCells = static_cast<std::size_t>(cg.cellCount());
    coarse->cellOps.resize(coarseCells);
    for (Index ck = 0; ck < cg.nz(); ++ck)
      for (Index cj = 0; cj < cg.ny(); ++cj)
        for (Index ci = 0; ci < cg.nx(); ++ci) {
          std::array<const Hex8Operators*, 8> key{};
          for (Index k = ck * 2; k < std::min<Index>(ck * 2 + 2, fg.nz()); ++k)
            for (Index j = cj * 2; j < std::min<Index>(cj * 2 + 2, fg.ny());
                 ++j)
              for (Index i = ci * 2; i < std::min<Index>(ci * 2 + 2, fg.nx());
                   ++i)
                key[static_cast<std::size_t>((i - ci * 2) + 2 * (j - cj * 2) +
                                             4 * (k - ck * 2))] =
                    f.cellOps[static_cast<std::size_t>(fg.cellIndex(i, j, k))];
          auto it = coarse->ownedOps.find(key);
          if (it == coarse->ownedOps.end())
            it = coarse->ownedOps
                     .emplace(key, galerkinCompositeOperator(fg, cg, f.cellOps,
                                                             ci, cj, ck))
                     .first;
          coarse->cellOps[static_cast<std::size_t>(
              cg.cellIndex(ci, cj, ck))] = &it->second;
        }

    // Coarse Dirichlet mask: the grid shape is preserved, so the same rule
    // as the fine solver (clamped k=0 face, x/y rollers on the sides).
    coarse->constrained.assign(static_cast<std::size_t>(coarse->nodes) * 3, 0);
    for (Index k = 0; k <= cg.nz(); ++k)
      for (Index j = 0; j <= cg.ny(); ++j)
        for (Index i = 0; i <= cg.nx(); ++i) {
          const Index n = cg.nodeIndex(i, j, k);
          if (k == 0) {
            coarse->constrained[n * 3 + 0] = 1;
            coarse->constrained[n * 3 + 1] = 1;
            coarse->constrained[n * 3 + 2] = 1;
            continue;
          }
          if (i == 0 || i == cg.nx()) coarse->constrained[n * 3 + 0] = 1;
          if (j == 0 || j == cg.ny()) coarse->constrained[n * 3 + 1] = 1;
        }

    // Fine→coarse transfer: per-axis interpolation maps, then the reverse
    // (restriction) lists built by bucketing fine nodes per coarse node in
    // fine-node order — a fixed, scheduling-independent layout.
    {
      std::vector<double> fx(static_cast<std::size_t>(fg.nx()) + 1),
          cx(static_cast<std::size_t>(cg.nx()) + 1);
      for (Index i = 0; i <= fg.nx(); ++i)
        fx[static_cast<std::size_t>(i)] = fg.nodeX(i);
      for (Index i = 0; i <= cg.nx(); ++i)
        cx[static_cast<std::size_t>(i)] = cg.nodeX(i);
      f.tx = buildAxisTransfer(fg.nx(), cg.nx(), fx, cx);
      std::vector<double> fy(static_cast<std::size_t>(fg.ny()) + 1),
          cy(static_cast<std::size_t>(cg.ny()) + 1);
      for (Index j = 0; j <= fg.ny(); ++j)
        fy[static_cast<std::size_t>(j)] = fg.nodeY(j);
      for (Index j = 0; j <= cg.ny(); ++j)
        cy[static_cast<std::size_t>(j)] = cg.nodeY(j);
      f.ty = buildAxisTransfer(fg.ny(), cg.ny(), fy, cy);
      std::vector<double> fz(static_cast<std::size_t>(fg.nz()) + 1),
          cz(static_cast<std::size_t>(cg.nz()) + 1);
      for (Index k = 0; k <= fg.nz(); ++k)
        fz[static_cast<std::size_t>(k)] = fg.nodeZ(k);
      for (Index k = 0; k <= cg.nz(); ++k)
        cz[static_cast<std::size_t>(k)] = cg.nodeZ(k);
      f.tz = buildAxisTransfer(fg.nz(), cg.nz(), fz, cz);
    }

    {
      std::vector<std::vector<std::pair<Index, double>>> buckets(
          static_cast<std::size_t>(coarse->nodes));
      const Index fRow = fg.nx() + 1, fSlab = fRow * (fg.ny() + 1);
      for (Index fn = 0; fn < f.nodes; ++fn) {
        const Index K = fn / fSlab;
        const Index rem = fn % fSlab;
        const Index J = rem / fRow;
        const Index I = rem % fRow;
        const Index cx = f.tx.c[static_cast<std::size_t>(I)];
        const Index cy = f.ty.c[static_cast<std::size_t>(J)];
        const Index cz = f.tz.c[static_cast<std::size_t>(K)];
        const double wx = f.tx.w[static_cast<std::size_t>(I)];
        const double wy = f.ty.w[static_cast<std::size_t>(J)];
        const double wz = f.tz.w[static_cast<std::size_t>(K)];
        for (int dk = 0; dk < 2; ++dk)
          for (int dj = 0; dj < 2; ++dj)
            for (int di = 0; di < 2; ++di) {
              const double w = (di ? wx : 1.0 - wx) * (dj ? wy : 1.0 - wy) *
                               (dk ? wz : 1.0 - wz);
              if (w == 0.0) continue;
              const Index cn = cg.nodeIndex(cx + di, cy + dj, cz + dk);
              buckets[static_cast<std::size_t>(cn)].emplace_back(fn, w);
            }
      }
      f.restrictPtr.assign(static_cast<std::size_t>(coarse->nodes) + 1, 0);
      std::size_t total = 0;
      for (Index cn = 0; cn < coarse->nodes; ++cn) {
        total += buckets[static_cast<std::size_t>(cn)].size();
        f.restrictPtr[static_cast<std::size_t>(cn) + 1] =
            static_cast<Index>(total);
      }
      f.restrictFine.resize(total);
      f.restrictWeight.resize(total);
      std::size_t at = 0;
      for (Index cn = 0; cn < coarse->nodes; ++cn)
        for (const auto& [fn, w] : buckets[static_cast<std::size_t>(cn)]) {
          f.restrictFine[at] = fn;
          f.restrictWeight[at] = w;
          ++at;
        }
    }

    levels_.push_back(std::move(coarse));
  }

  // Smoother blocks and the Chebyshev interval's λmax on every level but
  // the coarsest (which is solved directly); scratch everywhere.
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    Level& lvl = *levels_[l];
    const auto dofs = static_cast<std::size_t>(lvl.nodes) * 3;
    lvl.r.assign(dofs, 0.0);
    lvl.z.assign(dofs, 0.0);
    lvl.work.assign(dofs, 0.0);
    // The fine level always gets a stencil operator even when the hierarchy
    // degenerates to a single dense-solved level: the solver uses
    // fineOperator() as CG's matvec in multigrid mode.
    if (l == 0 || l + 1 < levels_.size())
      lvl.op = NodeStencilOperator(lvl.grid, lvl.constrained, lvl.cellOps,
                                   pool_);
    if (l + 1 < levels_.size()) {
      lvl.smoothD.assign(dofs, 0.0);
      lvl.smoothAd.assign(dofs, 0.0);
      buildLevelBlocks(lvl, pool_);
      lvl.lambdaMax = estimateBlockJacobiLambdaMax(lvl, pool_);
    }
  }

  // Coarsest level: dense assembly with constrained rows/cols as identity,
  // factored once.
  {
    const Level& c = *levels_.back();
    const auto n = static_cast<std::size_t>(c.nodes) * 3;
    DenseMatrix a(n, n);
    const VoxelGrid& g = c.grid;
    for (Index ck = 0; ck < g.nz(); ++ck)
      for (Index cj = 0; cj < g.ny(); ++cj)
        for (Index ci = 0; ci < g.nx(); ++ci) {
          const Hex8Operators& ops =
              *c.cellOps[static_cast<std::size_t>(g.cellIndex(ci, cj, ck))];
          std::array<Index, kHexDofs> dofs;
          for (int m = 0; m < kHexNodes; ++m) {
            const Index mn = g.nodeIndex(ci + (m & 1), cj + ((m >> 1) & 1),
                                         ck + ((m >> 2) & 1));
            for (int d = 0; d < 3; ++d)
              dofs[static_cast<std::size_t>(3 * m + d)] = mn * 3 + d;
          }
          for (int p = 0; p < kHexDofs; ++p) {
            const Index rp = dofs[static_cast<std::size_t>(p)];
            if (c.constrained[rp]) continue;
            for (int q = 0; q < kHexDofs; ++q) {
              const Index cq = dofs[static_cast<std::size_t>(q)];
              if (c.constrained[cq]) continue;
              a(static_cast<std::size_t>(rp), static_cast<std::size_t>(cq)) +=
                  ops.stiffness[static_cast<std::size_t>(p) * kHexDofs +
                                static_cast<std::size_t>(q)];
            }
          }
        }
    for (std::size_t d = 0; d < n; ++d)
      if (c.constrained[d]) a(d, d) = 1.0;
    coarseFactor_.factor(a);
  }
}

// Block-Jacobi-preconditioned Chebyshev smoothing of degree `steps`: the
// update z += p(D⁻¹A) D⁻¹ (r − A z) with p the Chebyshev polynomial
// minimizing the error over D⁻¹A eigenvalues in [b/eigRatio, b],
// b = safety·λmax. The three-term recurrence costs one operator apply and
// one block-inverse apply per degree; |q(t)| < 1 on (0, b] for the error
// polynomial q, so the smoother alone converges and the symmetric
// V(k,k) cycle stays SPD. The zero-guess pre-smooth skips the (zero)
// initial operator apply.
void VoxelStressMultigrid::smooth(const Level& lvl, std::span<const double> r,
                                  std::span<double> z, int steps,
                                  bool zeroGuess) const {
  const std::int64_t dofs = static_cast<std::int64_t>(lvl.nodes) * 3;
  const double b = options_.lambdaMaxSafety * lvl.lambdaMax;
  const double a = b / options_.chebyshevEigRatio;
  const double theta = 0.5 * (b + a);
  const double delta = 0.5 * (b - a);
  const double sigma1 = theta / delta;
  double rho = 1.0 / sigma1;

  // res = r − A z (just r on a zero guess) into work.
  if (zeroGuess) {
    parallelFor(pool_, 0, dofs, kDofGrain, [&](std::int64_t i) {
      lvl.work[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
    });
  } else {
    applyLevelOperator(lvl, z, lvl.work, pool_);
    parallelFor(pool_, 0, dofs, kDofGrain, [&](std::int64_t i) {
      lvl.work[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] -
          lvl.work[static_cast<std::size_t>(i)];
    });
  }
  // d = (1/θ) D⁻¹ res; z ⇐ z + d.
  applyBlockInverse(lvl, lvl.work, lvl.smoothD, pool_);
  const double invTheta = 1.0 / theta;
  parallelFor(pool_, 0, dofs, kDofGrain, [&](std::int64_t i) {
    lvl.smoothD[static_cast<std::size_t>(i)] *= invTheta;
    if (zeroGuess)
      z[static_cast<std::size_t>(i)] = lvl.smoothD[static_cast<std::size_t>(i)];
    else
      z[static_cast<std::size_t>(i)] +=
          lvl.smoothD[static_cast<std::size_t>(i)];
  });

  for (int k = 1; k < steps; ++k) {
    // res ⇐ res − A d, then d ⇐ ρ'ρ d + (2ρ'/δ) D⁻¹ res, z ⇐ z + d.
    applyLevelOperator(lvl, lvl.smoothD, lvl.smoothAd, pool_);
    parallelFor(pool_, 0, dofs, kDofGrain, [&](std::int64_t i) {
      lvl.work[static_cast<std::size_t>(i)] -=
          lvl.smoothAd[static_cast<std::size_t>(i)];
    });
    applyBlockInverse(lvl, lvl.work, lvl.smoothAd, pool_);
    const double rhoNew = 1.0 / (2.0 * sigma1 - rho);
    const double cd = rhoNew * rho;
    const double cr = 2.0 * rhoNew / delta;
    parallelFor(pool_, 0, dofs, kDofGrain, [&](std::int64_t i) {
      const auto s = static_cast<std::size_t>(i);
      lvl.smoothD[s] = cd * lvl.smoothD[s] + cr * lvl.smoothAd[s];
      z[s] += lvl.smoothD[s];
    });
    rho = rhoNew;
  }
}

void VoxelStressMultigrid::vcycle(std::size_t level, std::span<const double> r,
                                  std::span<double> z) const {
  const Level& lvl = *levels_[level];
  if (level + 1 == levels_.size()) {
    coarseFactor_.solve(r, z);
    return;
  }
  const Level& next = *levels_[level + 1];
  const int pre = level == 0 ? options_.preSmooth : options_.coarsePreSmooth;
  const int post =
      level == 0 ? options_.postSmooth : options_.coarsePostSmooth;

  smooth(lvl, r, z, pre, /*zeroGuess=*/true);

  // Residual, restricted to the coarse level (gather per coarse node).
  applyLevelOperator(lvl, z, lvl.work, pool_);
  const std::int64_t dofs = static_cast<std::int64_t>(lvl.nodes) * 3;
  parallelFor(pool_, 0, dofs, kDofGrain, [&](std::int64_t i) {
    lvl.work[static_cast<std::size_t>(i)] =
        r[static_cast<std::size_t>(i)] - lvl.work[static_cast<std::size_t>(i)];
  });
  parallelFor(pool_, 0, next.nodes, kNodeGrain, [&](std::int64_t cn) {
    const Index begin = lvl.restrictPtr[static_cast<std::size_t>(cn)];
    const Index end = lvl.restrictPtr[static_cast<std::size_t>(cn) + 1];
    double acc[3] = {0.0, 0.0, 0.0};
    for (Index e = begin; e < end; ++e) {
      const Index fn = lvl.restrictFine[static_cast<std::size_t>(e)];
      const double w = lvl.restrictWeight[static_cast<std::size_t>(e)];
      for (int d = 0; d < 3; ++d)
        acc[d] += w * lvl.work[static_cast<std::size_t>(fn) * 3 +
                               static_cast<std::size_t>(d)];
    }
    for (int d = 0; d < 3; ++d) {
      const auto dof = static_cast<std::size_t>(cn) * 3 +
                       static_cast<std::size_t>(d);
      next.r[dof] = next.constrained[dof] ? 0.0 : acc[d];
    }
  });

  vcycle(level + 1, next.r, next.z);

  // Prolongate the coarse correction and add (constrained dofs excluded).
  const VoxelGrid& fg = lvl.grid;
  const VoxelGrid& cg = next.grid;
  const Index fRow = fg.nx() + 1, fSlab = fRow * (fg.ny() + 1);
  parallelFor(pool_, 0, lvl.nodes, kNodeGrain, [&](std::int64_t ni) {
    const Index fn = static_cast<Index>(ni);
    const Index K = fn / fSlab;
    const Index rem = fn % fSlab;
    const Index J = rem / fRow;
    const Index I = rem % fRow;
    const Index cx = lvl.tx.c[static_cast<std::size_t>(I)];
    const Index cy = lvl.ty.c[static_cast<std::size_t>(J)];
    const Index cz = lvl.tz.c[static_cast<std::size_t>(K)];
    const double wx = lvl.tx.w[static_cast<std::size_t>(I)];
    const double wy = lvl.ty.w[static_cast<std::size_t>(J)];
    const double wz = lvl.tz.w[static_cast<std::size_t>(K)];
    double corr[3] = {0.0, 0.0, 0.0};
    for (int dk = 0; dk < 2; ++dk)
      for (int dj = 0; dj < 2; ++dj)
        for (int di = 0; di < 2; ++di) {
          const double w = (di ? wx : 1.0 - wx) * (dj ? wy : 1.0 - wy) *
                           (dk ? wz : 1.0 - wz);
          if (w == 0.0) continue;
          const Index cn = cg.nodeIndex(cx + di, cy + dj, cz + dk);
          for (int d = 0; d < 3; ++d)
            corr[d] += w * next.z[static_cast<std::size_t>(cn) * 3 +
                                  static_cast<std::size_t>(d)];
        }
    for (int d = 0; d < 3; ++d) {
      const auto dof =
          static_cast<std::size_t>(fn) * 3 + static_cast<std::size_t>(d);
      if (!lvl.constrained[dof]) z[dof] += corr[d];
    }
  });

  smooth(lvl, r, z, post, /*zeroGuess=*/false);
}

void VoxelStressMultigrid::apply(std::span<const double> r,
                                 std::span<double> z) const {
  VIADUCT_SPAN("fea.mg_cycle");
  VIADUCT_COUNTER_ADD("fea.mg_cycles", 1);
  const Level& fine = *levels_.front();
  VIADUCT_REQUIRE(r.size() == static_cast<std::size_t>(fine.nodes) * 3 &&
                  z.size() == r.size());
  vcycle(0, r, z);
  // M must preserve the constrained subspace exactly: CG's residual is
  // identically zero there and z = M⁻¹r has to keep it that way.
  const std::int64_t dofs = static_cast<std::int64_t>(fine.nodes) * 3;
  parallelFor(pool_, 0, dofs, kDofGrain, [&](std::int64_t i) {
    if (fine.constrained[static_cast<std::size_t>(i)])
      z[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
  });
}

}  // namespace viaduct
