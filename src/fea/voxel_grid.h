// Structured voxel mesh with per-axis (possibly nonuniform) cell sizes and
// a material id per cell. The geometry builders in src/structures paint
// Cu DD layouts into this grid; the thermoelastic solver meshes it with
// Hex8 elements.
#pragma once

#include <vector>

#include "fea/material.h"
#include "numerics/sparse.h"

namespace viaduct {

class VoxelGrid {
 public:
  /// Cell sizes along each axis [m]; all must be positive.
  VoxelGrid(std::vector<double> cellSizesX, std::vector<double> cellSizesY,
            std::vector<double> cellSizesZ,
            MaterialId fill = MaterialId::kSiCOH);

  /// Uniform convenience constructor.
  static VoxelGrid uniform(Index nx, Index ny, Index nz, double hx, double hy,
                           double hz, MaterialId fill = MaterialId::kSiCOH);

  Index nx() const { return static_cast<Index>(hx_.size()); }
  Index ny() const { return static_cast<Index>(hy_.size()); }
  Index nz() const { return static_cast<Index>(hz_.size()); }
  Index cellCount() const { return nx() * ny() * nz(); }
  Index nodeCount() const { return (nx() + 1) * (ny() + 1) * (nz() + 1); }

  double cellSizeX(Index i) const { return hx_[static_cast<std::size_t>(i)]; }
  double cellSizeY(Index j) const { return hy_[static_cast<std::size_t>(j)]; }
  double cellSizeZ(Index k) const { return hz_[static_cast<std::size_t>(k)]; }

  /// Node coordinate along an axis (0 at the low face).
  double nodeX(Index i) const { return xCoord_[static_cast<std::size_t>(i)]; }
  double nodeY(Index j) const { return yCoord_[static_cast<std::size_t>(j)]; }
  double nodeZ(Index k) const { return zCoord_[static_cast<std::size_t>(k)]; }

  /// Cell center coordinates.
  double cellCenterX(Index i) const { return 0.5 * (nodeX(i) + nodeX(i + 1)); }
  double cellCenterY(Index j) const { return 0.5 * (nodeY(j) + nodeY(j + 1)); }
  double cellCenterZ(Index k) const { return 0.5 * (nodeZ(k) + nodeZ(k + 1)); }

  double extentX() const { return xCoord_.back(); }
  double extentY() const { return yCoord_.back(); }
  double extentZ() const { return zCoord_.back(); }

  Index cellIndex(Index i, Index j, Index k) const;
  Index nodeIndex(Index i, Index j, Index k) const;

  MaterialId material(Index i, Index j, Index k) const;
  void setMaterial(Index i, Index j, Index k, MaterialId m);

  /// Paints an axis-aligned box [x0,x1)×[y0,y1)×[z0,z1) (in meters) with a
  /// material; cells whose CENTER lies inside the box are painted. Boxes
  /// may extend beyond the domain (clipped).
  void paintBox(double x0, double x1, double y0, double y1, double z0,
                double z1, MaterialId m);

  /// Finds the cell-layer range [k0, k1) whose z-interval overlaps
  /// [z0, z1). Useful for probing specific stack layers.
  std::pair<Index, Index> zLayerRange(double z0, double z1) const;

  /// Index of the cell column containing coordinate x (clamped).
  Index cellAtX(double x) const;
  Index cellAtY(double y) const;
  Index cellAtZ(double z) const;

  /// Fraction of cells painted with a given material (diagnostics).
  double materialFraction(MaterialId m) const;

 private:
  std::vector<double> hx_, hy_, hz_;
  std::vector<double> xCoord_, yCoord_, zCoord_;  // node coordinates
  std::vector<MaterialId> materials_;             // nx*ny*nz, x fastest
};

}  // namespace viaduct
