#include "fea/stiffness_csr.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "obs/obs.h"

namespace viaduct {

namespace {

// Same fixed node grain as the rest of the FEA assembly kernels.
constexpr std::int64_t kNodeGrain = 256;

/// Visits the cells adjacent to node (I, J, K) in increasing (k, j, i)
/// order and calls fn(cellIndex, localNode) for each — the same traversal
/// as the solver's gather kernels, so summation order (and hence bits)
/// matches them.
template <typename Fn>
void forEachAdjacentCell(const VoxelGrid& g, Index I, Index J, Index K,
                         Fn&& fn) {
  const Index k0 = std::max<Index>(K - 1, 0),
              k1 = std::min<Index>(K, g.nz() - 1);
  const Index j0 = std::max<Index>(J - 1, 0),
              j1 = std::min<Index>(J, g.ny() - 1);
  const Index i0 = std::max<Index>(I - 1, 0),
              i1 = std::min<Index>(I, g.nx() - 1);
  for (Index ck = k0; ck <= k1; ++ck)
    for (Index cj = j0; cj <= j1; ++cj)
      for (Index ci = i0; ci <= i1; ++ci) {
        const int n = (I - ci) + 2 * (J - cj) + 4 * (K - ck);
        fn(g.cellIndex(ci, cj, ck), n, ci, cj, ck);
      }
}

}  // namespace

CsrMatrix assembleVoxelStiffnessCsr(
    const VoxelGrid& grid, std::span<const std::uint8_t> constrained,
    std::span<const Hex8Operators* const> cellOperators, ThreadPool* pool) {
  VIADUCT_SPAN("fea.assemble_csr");
  const Index nodes = grid.nodeCount();
  const Index dofs = nodes * 3;
  VIADUCT_REQUIRE(constrained.size() == static_cast<std::size_t>(dofs) &&
                  cellOperators.size() ==
                      static_cast<std::size_t>(grid.cellCount()));
  const Index nodesPerRow = grid.nx() + 1;
  const Index nodesPerSlab = nodesPerRow * (grid.ny() + 1);

  // Neighbor nodes of (I, J, K) in ascending node-index order (k, j, i
  // loops ascending ⇒ ascending flat index), self included.
  const auto forEachNeighborNode = [&](Index I, Index J, Index K, auto&& fn) {
    const Index k0 = std::max<Index>(K - 1, 0);
    const Index k1 = std::min<Index>(K + 1, grid.nz());
    const Index j0 = std::max<Index>(J - 1, 0);
    const Index j1 = std::min<Index>(J + 1, grid.ny());
    const Index i0 = std::max<Index>(I - 1, 0);
    const Index i1 = std::min<Index>(I + 1, grid.nx());
    for (Index k = k0; k <= k1; ++k)
      for (Index j = j0; j <= j1; ++j)
        for (Index i = i0; i <= i1; ++i) fn(grid.nodeIndex(i, j, k));
  };

  // Pass 1: row sizes. A constrained row holds exactly its diagonal; an
  // unconstrained row holds every unconstrained dof of every neighbor node.
  std::vector<Index> rowPtr(static_cast<std::size_t>(dofs) + 1, 0);
  parallelFor(pool, 0, nodes, kNodeGrain, [&](std::int64_t ni) {
    const Index node = static_cast<Index>(ni);
    const Index K = node / nodesPerSlab;
    const Index rem = node % nodesPerSlab;
    const Index J = rem / nodesPerRow;
    const Index I = rem % nodesPerRow;
    Index unconstrainedCols = 0;
    forEachNeighborNode(I, J, K, [&](Index m) {
      for (int q = 0; q < 3; ++q)
        if (!constrained[m * 3 + q]) ++unconstrainedCols;
    });
    for (int d = 0; d < 3; ++d) {
      const Index row = node * 3 + d;
      rowPtr[static_cast<std::size_t>(row) + 1] =
          constrained[row] ? 1 : unconstrainedCols;
    }
  });
  for (std::size_t r = 0; r < static_cast<std::size_t>(dofs); ++r)
    rowPtr[r + 1] += rowPtr[r];

  // Pass 2: per-node 3×3 neighbor blocks summed over shared elements, then
  // emitted in sorted column order.
  std::vector<Index> colIdx(static_cast<std::size_t>(rowPtr.back()));
  std::vector<double> values(colIdx.size());
  parallelFor(pool, 0, nodes, kNodeGrain, [&](std::int64_t ni) {
    const Index node = static_cast<Index>(ni);
    const Index K = node / nodesPerSlab;
    const Index rem = node % nodesPerSlab;
    const Index J = rem / nodesPerRow;
    const Index I = rem % nodesPerRow;
    // blocks[b]: 3×3 coupling to the b-th neighbor (ascending node index).
    std::array<Index, 27> neighbor{};
    std::array<std::array<double, 9>, 27> blocks{};
    int neighborCount = 0;
    forEachNeighborNode(I, J, K, [&](Index m) {
      neighbor[static_cast<std::size_t>(neighborCount++)] = m;
    });
    const auto blockOf = [&](Index m) -> std::array<double, 9>& {
      const auto* it = std::lower_bound(neighbor.begin(),
                                        neighbor.begin() + neighborCount, m);
      return blocks[static_cast<std::size_t>(it - neighbor.begin())];
    };
    forEachAdjacentCell(
        grid, I, J, K, [&](Index cell, int n, Index ci, Index cj, Index ck) {
          const Hex8Operators& ops =
              *cellOperators[static_cast<std::size_t>(cell)];
          for (int m = 0; m < kHexNodes; ++m) {
            const Index mn = grid.nodeIndex(ci + (m & 1), cj + ((m >> 1) & 1),
                                            ck + ((m >> 2) & 1));
            auto& blk = blockOf(mn);
            for (int p = 0; p < 3; ++p)
              for (int q = 0; q < 3; ++q)
                blk[static_cast<std::size_t>(p * 3 + q)] +=
                    ops.stiffness[(3 * n + p) * kHexDofs + (3 * m + q)];
          }
        });
    for (int d = 0; d < 3; ++d) {
      const Index row = node * 3 + d;
      Index at = rowPtr[static_cast<std::size_t>(row)];
      if (constrained[row]) {
        colIdx[static_cast<std::size_t>(at)] = row;
        values[static_cast<std::size_t>(at)] = 1.0;
        continue;
      }
      for (int b = 0; b < neighborCount; ++b) {
        const Index m = neighbor[static_cast<std::size_t>(b)];
        for (int q = 0; q < 3; ++q) {
          const Index col = m * 3 + q;
          if (constrained[col]) continue;
          colIdx[static_cast<std::size_t>(at)] = col;
          values[static_cast<std::size_t>(at)] =
              blocks[static_cast<std::size_t>(b)]
                    [static_cast<std::size_t>(d * 3 + q)];
          ++at;
        }
      }
    }
  });
  return CsrMatrix::fromCsrArrays(dofs, dofs, std::move(rowPtr),
                                  std::move(colIdx), std::move(values));
}

}  // namespace viaduct
