#include "fea/thermo_solver.h"

#include <cmath>
#include <optional>

#include "common/check.h"
#include "common/logging.h"
#include "numerics/dense.h"
#include "numerics/preconditioner.h"

namespace viaduct {

namespace {
long long quantize(double h) {
  // Picometer quantization: distinct voxel sizes are micrometer-scale, so
  // this is far below any physical difference while being hash-stable.
  return static_cast<long long>(std::llround(h * 1e12));
}
}  // namespace

/// Matrix-free stiffness operator with symmetric Dirichlet handling:
/// constrained dofs act as identity rows/columns.
class VoxelElasticityOperator final : public LinearOperator {
 public:
  explicit VoxelElasticityOperator(const ThermoSolver& solver)
      : s_(solver) {}

  Index size() const override { return s_.grid_.nodeCount() * 3; }

  void apply(std::span<const double> x, std::span<double> y) const override {
    VIADUCT_REQUIRE(x.size() == static_cast<std::size_t>(size()) &&
                    y.size() == x.size());
    std::fill(y.begin(), y.end(), 0.0);
    const VoxelGrid& g = s_.grid_;
    std::array<double, kHexDofs> ue{}, fe{};
    std::array<Index, kHexNodes> nodes{};
    for (Index k = 0; k < g.nz(); ++k) {
      for (Index j = 0; j < g.ny(); ++j) {
        for (Index i = 0; i < g.nx(); ++i) {
          const Hex8Operators& ops = *s_.cellOps_[static_cast<std::size_t>(
              g.cellIndex(i, j, k))];
          for (int n = 0; n < kHexNodes; ++n)
            nodes[n] =
                g.nodeIndex(i + (n & 1), j + ((n >> 1) & 1), k + ((n >> 2) & 1));
          // Gather with constrained entries zeroed.
          for (int n = 0; n < kHexNodes; ++n) {
            for (int d = 0; d < 3; ++d) {
              const Index dof = nodes[n] * 3 + d;
              ue[3 * n + d] = s_.constrained_[dof] ? 0.0 : x[dof];
            }
          }
          // fe = Ke * ue.
          for (int r = 0; r < kHexDofs; ++r) {
            double acc = 0.0;
            const double* row = &ops.stiffness[static_cast<std::size_t>(r) *
                                               kHexDofs];
            for (int c = 0; c < kHexDofs; ++c) acc += row[c] * ue[c];
            fe[r] = acc;
          }
          // Scatter, skipping constrained rows.
          for (int n = 0; n < kHexNodes; ++n) {
            for (int d = 0; d < 3; ++d) {
              const Index dof = nodes[n] * 3 + d;
              if (!s_.constrained_[dof]) y[dof] += fe[3 * n + d];
            }
          }
        }
      }
    }
    // Identity action on constrained dofs.
    for (std::size_t dof = 0; dof < x.size(); ++dof)
      if (s_.constrained_[dof]) y[dof] = x[dof];
  }

 private:
  const ThermoSolver& s_;
};

ThermoSolver::ThermoSolver(const VoxelGrid& grid,
                           const ThermoSolverOptions& options)
    : grid_(grid), options_(options) {
  deltaT_ = options_.operatingTemperatureC - options_.annealTemperatureC;
  setupConstraints();
  buildOperators();
}

void ThermoSolver::setupConstraints() {
  const Index nodes = grid_.nodeCount();
  constrained_.assign(static_cast<std::size_t>(nodes) * 3, false);
  const Index nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  for (Index k = 0; k <= nz; ++k) {
    for (Index j = 0; j <= ny; ++j) {
      for (Index i = 0; i <= nx; ++i) {
        const Index n = grid_.nodeIndex(i, j, k);
        if (k == 0) {
          // Clamped substrate bottom.
          constrained_[n * 3 + 0] = true;
          constrained_[n * 3 + 1] = true;
          constrained_[n * 3 + 2] = true;
          continue;
        }
        // Rollers on side faces: zero normal displacement.
        if (i == 0 || i == nx) constrained_[n * 3 + 0] = true;
        if (j == 0 || j == ny) constrained_[n * 3 + 1] = true;
      }
    }
  }
}

void ThermoSolver::buildOperators() {
  cellOps_.resize(static_cast<std::size_t>(grid_.cellCount()));
  for (Index k = 0; k < grid_.nz(); ++k) {
    for (Index j = 0; j < grid_.ny(); ++j) {
      for (Index i = 0; i < grid_.nx(); ++i) {
        const MaterialId m = grid_.material(i, j, k);
        const double hx = grid_.cellSizeX(i);
        const double hy = grid_.cellSizeY(j);
        const double hz = grid_.cellSizeZ(k);
        const auto key = std::make_tuple(static_cast<int>(m), quantize(hx),
                                         quantize(hy), quantize(hz));
        auto it = operatorCache_.find(key);
        if (it == operatorCache_.end()) {
          it = operatorCache_
                   .emplace(key, computeHex8Operators(materialProperties(m),
                                                      hx, hy, hz, deltaT_))
                   .first;
        }
        cellOps_[static_cast<std::size_t>(grid_.cellIndex(i, j, k))] =
            &it->second;
      }
    }
  }
}

std::vector<double> ThermoSolver::assembleThermalLoad() const {
  std::vector<double> f(static_cast<std::size_t>(grid_.nodeCount()) * 3, 0.0);
  for (Index k = 0; k < grid_.nz(); ++k) {
    for (Index j = 0; j < grid_.ny(); ++j) {
      for (Index i = 0; i < grid_.nx(); ++i) {
        const Hex8Operators& ops =
            *cellOps_[static_cast<std::size_t>(grid_.cellIndex(i, j, k))];
        for (int n = 0; n < kHexNodes; ++n) {
          const Index node = grid_.nodeIndex(i + (n & 1), j + ((n >> 1) & 1),
                                             k + ((n >> 2) & 1));
          for (int d = 0; d < 3; ++d) {
            const Index dof = node * 3 + d;
            if (!constrained_[dof]) f[dof] += ops.thermalLoad[3 * n + d];
          }
        }
      }
    }
  }
  return f;
}

CgResult ThermoSolver::solve() {
  if (solved_) return CgResult{.iterations = 0, .converged = true};
  const VoxelElasticityOperator op(*this);
  const std::vector<double> f = assembleThermalLoad();

  // Nodal 3×3 block-Jacobi preconditioner assembled from element diagonal
  // blocks, with constrained dofs replaced by identity.
  const Index nodes = grid_.nodeCount();
  std::vector<double> blocks(static_cast<std::size_t>(nodes) * 9, 0.0);
  for (Index k = 0; k < grid_.nz(); ++k) {
    for (Index j = 0; j < grid_.ny(); ++j) {
      for (Index i = 0; i < grid_.nx(); ++i) {
        const Hex8Operators& ops =
            *cellOps_[static_cast<std::size_t>(grid_.cellIndex(i, j, k))];
        for (int n = 0; n < kHexNodes; ++n) {
          const Index node = grid_.nodeIndex(i + (n & 1), j + ((n >> 1) & 1),
                                             k + ((n >> 2) & 1));
          double* blk = &blocks[static_cast<std::size_t>(node) * 9];
          for (int p = 0; p < 3; ++p)
            for (int q = 0; q < 3; ++q)
              blk[p * 3 + q] +=
                  ops.stiffness[(3 * n + p) * kHexDofs + (3 * n + q)];
        }
      }
    }
  }

  class NodalBlockPreconditioner final : public Preconditioner {
   public:
    NodalBlockPreconditioner(std::vector<double> inverses)
        : inv_(std::move(inverses)) {}
    void apply(std::span<const double> r, std::span<double> z) const override {
      const std::size_t nodes = inv_.size() / 9;
      for (std::size_t n = 0; n < nodes; ++n) {
        const double* m = &inv_[n * 9];
        const double* rn = &r[n * 3];
        double* zn = &z[n * 3];
        for (int p = 0; p < 3; ++p)
          zn[p] = m[p * 3] * rn[0] + m[p * 3 + 1] * rn[1] + m[p * 3 + 2] * rn[2];
      }
    }
    const char* name() const override { return "nodal-block-jacobi"; }

   private:
    std::vector<double> inv_;
  };

  // Impose identity on constrained dofs, then invert each 3×3 block.
  std::vector<double> inverses(blocks.size(), 0.0);
  for (Index n = 0; n < nodes; ++n) {
    double* blk = &blocks[static_cast<std::size_t>(n) * 9];
    for (int d = 0; d < 3; ++d) {
      if (!constrained_[n * 3 + d]) continue;
      for (int q = 0; q < 3; ++q) {
        blk[d * 3 + q] = 0.0;
        blk[q * 3 + d] = 0.0;
      }
      blk[d * 3 + d] = 1.0;
    }
    DenseMatrix m(3, 3);
    for (int p = 0; p < 3; ++p)
      for (int q = 0; q < 3; ++q) m(p, q) = blk[p * 3 + q];
    DenseMatrix rhs = DenseMatrix::identity(3);
    const DenseMatrix inv = m.solveMultiple(rhs);
    double* out = &inverses[static_cast<std::size_t>(n) * 9];
    for (int p = 0; p < 3; ++p)
      for (int q = 0; q < 3; ++q) out[p * 3 + q] = inv(p, q);
  }
  const NodalBlockPreconditioner precond(std::move(inverses));

  displacements_.assign(f.size(), 0.0);
  CgOptions cgOpts;
  cgOpts.relativeTolerance = options_.cgRelativeTolerance;
  cgOpts.maxIterations = options_.cgMaxIterations;
  const CgResult result =
      conjugateGradient(op, f, displacements_, precond, cgOpts);
  VIADUCT_DEBUG << "FEA solve: " << result.iterations << " CG iterations, "
                << grid_.nodeCount() * 3 << " dof";
  solved_ = true;
  return result;
}

std::array<double, 3> ThermoSolver::displacement(Index i, Index j,
                                                 Index k) const {
  VIADUCT_REQUIRE_MSG(solved_, "call solve() first");
  const Index n = grid_.nodeIndex(i, j, k);
  return {displacements_[n * 3 + 0], displacements_[n * 3 + 1],
          displacements_[n * 3 + 2]};
}

void ThermoSolver::gatherElement(std::span<const double> u, Index i, Index j,
                                 Index k, std::span<double> ue) const {
  for (int n = 0; n < kHexNodes; ++n) {
    const Index node =
        grid_.nodeIndex(i + (n & 1), j + ((n >> 1) & 1), k + ((n >> 2) & 1));
    for (int d = 0; d < 3; ++d) ue[3 * n + d] = u[node * 3 + d];
  }
}

std::array<double, kStrainComponents> ThermoSolver::cellStress(
    Index i, Index j, Index k) const {
  VIADUCT_REQUIRE_MSG(solved_, "call solve() first");
  std::array<double, kHexDofs> ue{};
  gatherElement(displacements_, i, j, k, ue);
  return hex8CentroidStress(materialProperties(grid_.material(i, j, k)),
                            grid_.cellSizeX(i), grid_.cellSizeY(j),
                            grid_.cellSizeZ(k), deltaT_, ue);
}

double ThermoSolver::cellHydrostatic(Index i, Index j, Index k) const {
  return hydrostatic(cellStress(i, j, k));
}

ThermoSolver::Profile ThermoSolver::hydrostaticProfileX(Index j,
                                                        Index k) const {
  Profile p;
  p.x.reserve(static_cast<std::size_t>(grid_.nx()));
  p.sigmaH.reserve(static_cast<std::size_t>(grid_.nx()));
  for (Index i = 0; i < grid_.nx(); ++i) {
    p.x.push_back(grid_.cellCenterX(i));
    p.sigmaH.push_back(cellHydrostatic(i, j, k));
  }
  return p;
}

double ThermoSolver::peakHydrostatic(
    Index i0, Index i1, Index j0, Index j1, Index k0, Index k1,
    std::optional<MaterialId> onlyMaterial) const {
  VIADUCT_REQUIRE(i0 >= 0 && i1 <= grid_.nx() && j0 >= 0 && j1 <= grid_.ny() &&
                  k0 >= 0 && k1 <= grid_.nz());
  double peak = -std::numeric_limits<double>::infinity();
  for (Index k = k0; k < k1; ++k)
    for (Index j = j0; j < j1; ++j)
      for (Index i = i0; i < i1; ++i) {
        if (onlyMaterial && grid_.material(i, j, k) != *onlyMaterial) continue;
        peak = std::max(peak, cellHydrostatic(i, j, k));
      }
  VIADUCT_REQUIRE_MSG(std::isfinite(peak),
                      "no cells matched the requested material/box");
  return peak;
}

}  // namespace viaduct
