#include "fea/thermo_solver.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/check.h"
#include "common/logging.h"
#include "fea/stiffness_csr.h"
#include "numerics/dense.h"
#include "numerics/preconditioner.h"
#include "obs/obs.h"

namespace viaduct {

namespace {
long long quantize(double h) {
  // Picometer quantization: distinct voxel sizes are micrometer-scale, so
  // this is far below any physical difference while being hash-stable.
  return static_cast<long long>(std::llround(h * 1e12));
}

// Node-partitioned assembly grain. Compile-time constant (never derived
// from the thread count) so chunk layouts are identical for any pool size.
constexpr std::int64_t kNodeGrain = 256;

/// Visits the cells adjacent to node (I, J, K) in increasing (k, j, i)
/// order — the same order the legacy cell-sweep scatter visited them — and
/// calls fn(cellIndex, localNode) for each. Gathering per OUTPUT node this
/// way makes the assembly race-free and, because the per-node summation
/// order matches the serial sweep, bit-identical to it.
template <typename Fn>
void forEachAdjacentCell(const VoxelGrid& g, Index I, Index J, Index K,
                         Fn&& fn) {
  const Index k0 = std::max<Index>(K - 1, 0), k1 = std::min<Index>(K, g.nz() - 1);
  const Index j0 = std::max<Index>(J - 1, 0), j1 = std::min<Index>(J, g.ny() - 1);
  const Index i0 = std::max<Index>(I - 1, 0), i1 = std::min<Index>(I, g.nx() - 1);
  for (Index ck = k0; ck <= k1; ++ck)
    for (Index cj = j0; cj <= j1; ++cj)
      for (Index ci = i0; ci <= i1; ++ci) {
        const int n = (I - ci) + 2 * (J - cj) + 4 * (K - ck);
        fn(g.cellIndex(ci, cj, ck), n, ci, cj, ck);
      }
}
}  // namespace

/// Matrix-free stiffness operator with symmetric Dirichlet handling:
/// constrained dofs act as identity rows/columns. The product is gathered
/// per output node (see forEachAdjacentCell) and partitioned across the
/// solver's pool.
class VoxelElasticityOperator final : public LinearOperator {
 public:
  explicit VoxelElasticityOperator(const ThermoSolver& solver)
      : s_(solver) {}

  Index size() const override { return s_.grid_.nodeCount() * 3; }

  void apply(std::span<const double> x, std::span<double> y) const override {
    VIADUCT_SPAN("fea.cg_apply");
    VIADUCT_COUNTER_ADD("fea.operator_applies", 1);
    VIADUCT_REQUIRE(x.size() == static_cast<std::size_t>(size()) &&
                    y.size() == x.size());
    const VoxelGrid& g = s_.grid_;
    const Index nodesPerRow = g.nx() + 1;
    const Index nodesPerSlab = nodesPerRow * (g.ny() + 1);
    parallelFor(s_.pool_, 0, g.nodeCount(), kNodeGrain, [&](std::int64_t ni) {
      const Index node = static_cast<Index>(ni);
      const Index K = node / nodesPerSlab;
      const Index rem = node % nodesPerSlab;
      const Index J = rem / nodesPerRow;
      const Index I = rem % nodesPerRow;
      double out[3] = {0.0, 0.0, 0.0};
      const bool allConstrained = s_.constrained_[node * 3 + 0] &&
                                  s_.constrained_[node * 3 + 1] &&
                                  s_.constrained_[node * 3 + 2];
      if (!allConstrained) {
        std::array<double, kHexDofs> ue{};
        forEachAdjacentCell(
            g, I, J, K,
            [&](Index cell, int n, Index ci, Index cj, Index ck) {
              const Hex8Operators& ops =
                  *s_.cellOps_[static_cast<std::size_t>(cell)];
              // Gather with constrained entries zeroed.
              for (int m = 0; m < kHexNodes; ++m) {
                const Index mn = g.nodeIndex(ci + (m & 1), cj + ((m >> 1) & 1),
                                             ck + ((m >> 2) & 1));
                for (int d = 0; d < 3; ++d) {
                  const Index dof = mn * 3 + d;
                  ue[3 * m + d] = s_.constrained_[dof] ? 0.0 : x[dof];
                }
              }
              // Rows 3n..3n+2 of fe = Ke * ue.
              for (int d = 0; d < 3; ++d) {
                const double* row =
                    &ops.stiffness[static_cast<std::size_t>(3 * n + d) *
                                   kHexDofs];
                double acc = 0.0;
                for (int c = 0; c < kHexDofs; ++c) acc += row[c] * ue[c];
                out[d] += acc;
              }
            });
      }
      for (int d = 0; d < 3; ++d) {
        const Index dof = node * 3 + d;
        y[dof] = s_.constrained_[dof] ? x[dof] : out[d];
      }
    });
  }

 private:
  const ThermoSolver& s_;
};

const char* feaPreconditionerName(FeaPreconditionerKind kind) {
  switch (kind) {
    case FeaPreconditionerKind::kBlockJacobi:
      return "bj";
    case FeaPreconditionerKind::kIc0:
      return "ic0";
    case FeaPreconditionerKind::kMultigrid:
      return "mg";
  }
  return "bj";
}

std::optional<FeaPreconditionerKind> parseFeaPreconditionerName(
    std::string_view name) {
  if (name == "bj") return FeaPreconditionerKind::kBlockJacobi;
  if (name == "ic0") return FeaPreconditionerKind::kIc0;
  if (name == "mg") return FeaPreconditionerKind::kMultigrid;
  return std::nullopt;
}

ThermoSolver::ThermoSolver(const VoxelGrid& grid,
                           const ThermoSolverOptions& options)
    : grid_(grid), options_(options) {
  if (options_.pool) {
    pool_ = options_.pool;
  } else {
    ownedPool_ = std::make_unique<ThreadPool>(options_.parallelism);
    pool_ = ownedPool_.get();
  }
  deltaT_ = options_.operatingTemperatureC - options_.annealTemperatureC;
  activeKind_ = options_.preconditioner;
  setupConstraints();
  buildOperators();
}

void ThermoSolver::setupConstraints() {
  const Index nodes = grid_.nodeCount();
  constrained_.assign(static_cast<std::size_t>(nodes) * 3, false);
  const Index nx = grid_.nx(), ny = grid_.ny(), nz = grid_.nz();
  for (Index k = 0; k <= nz; ++k) {
    for (Index j = 0; j <= ny; ++j) {
      for (Index i = 0; i <= nx; ++i) {
        const Index n = grid_.nodeIndex(i, j, k);
        if (k == 0) {
          // Clamped substrate bottom.
          constrained_[n * 3 + 0] = true;
          constrained_[n * 3 + 1] = true;
          constrained_[n * 3 + 2] = true;
          continue;
        }
        // Rollers on side faces: zero normal displacement.
        if (i == 0 || i == nx) constrained_[n * 3 + 0] = true;
        if (j == 0 || j == ny) constrained_[n * 3 + 1] = true;
      }
    }
  }
}

void ThermoSolver::buildOperators() {
  cellOps_.resize(static_cast<std::size_t>(grid_.cellCount()));
  for (Index k = 0; k < grid_.nz(); ++k) {
    for (Index j = 0; j < grid_.ny(); ++j) {
      for (Index i = 0; i < grid_.nx(); ++i) {
        const MaterialId m = grid_.material(i, j, k);
        const double hx = grid_.cellSizeX(i);
        const double hy = grid_.cellSizeY(j);
        const double hz = grid_.cellSizeZ(k);
        const auto key = std::make_tuple(static_cast<int>(m), quantize(hx),
                                         quantize(hy), quantize(hz));
        auto it = operatorCache_.find(key);
        if (it == operatorCache_.end()) {
          it = operatorCache_
                   .emplace(key, computeHex8Operators(materialProperties(m),
                                                      hx, hy, hz, deltaT_))
                   .first;
        }
        cellOps_[static_cast<std::size_t>(grid_.cellIndex(i, j, k))] =
            &it->second;
      }
    }
  }
}

std::vector<double> ThermoSolver::assembleThermalLoad() const {
  VIADUCT_SPAN("fea.assemble_load");
  std::vector<double> f(static_cast<std::size_t>(grid_.nodeCount()) * 3, 0.0);
  const Index nodesPerRow = grid_.nx() + 1;
  const Index nodesPerSlab = nodesPerRow * (grid_.ny() + 1);
  parallelFor(pool_, 0, grid_.nodeCount(), kNodeGrain, [&](std::int64_t ni) {
    const Index node = static_cast<Index>(ni);
    const Index K = node / nodesPerSlab;
    const Index rem = node % nodesPerSlab;
    const Index J = rem / nodesPerRow;
    const Index I = rem % nodesPerRow;
    forEachAdjacentCell(grid_, I, J, K,
                        [&](Index cell, int n, Index, Index, Index) {
                          const Hex8Operators& ops =
                              *cellOps_[static_cast<std::size_t>(cell)];
                          for (int d = 0; d < 3; ++d) {
                            const Index dof = node * 3 + d;
                            if (!constrained_[dof])
                              f[dof] += ops.thermalLoad[3 * n + d];
                          }
                        });
  });
  return f;
}

namespace {

/// Nodal 3×3 block-Jacobi: one inverted diagonal block per node,
/// constrained dofs as identity (inverses built in ensurePreconditioner).
/// CG-facing adapter for the stencil-compressed stiffness that the
/// multigrid hierarchy builds for its fine level: in multigrid mode the
/// solver routes CG's matvec through it too, so the whole solve runs on the
/// compressed engine (same Dirichlet semantics, ulp-level differences in
/// summation order only).
class StencilElasticityOperator final : public LinearOperator {
 public:
  explicit StencilElasticityOperator(const NodeStencilOperator& op)
      : op_(op) {}
  Index size() const override { return op_.dofCount(); }
  void apply(std::span<const double> x, std::span<double> y) const override {
    VIADUCT_SPAN("fea.cg_apply");
    VIADUCT_COUNTER_ADD("fea.operator_applies", 1);
    op_.apply(x, y);
  }

 private:
  const NodeStencilOperator& op_;
};


class NodalBlockPreconditioner final : public Preconditioner {
 public:
  NodalBlockPreconditioner(std::vector<double> inverses, ThreadPool* pool)
      : inv_(std::move(inverses)), pool_(pool) {}
  void apply(std::span<const double> r, std::span<double> z) const override {
    VIADUCT_SPAN("fea.precond_apply");
    const auto nodes = static_cast<std::int64_t>(inv_.size() / 9);
    parallelFor(pool_, 0, nodes, kNodeGrain, [&](std::int64_t n) {
      const double* m = &inv_[static_cast<std::size_t>(n) * 9];
      const double* rn = &r[static_cast<std::size_t>(n) * 3];
      double* zn = &z[static_cast<std::size_t>(n) * 3];
      for (int p = 0; p < 3; ++p)
        zn[p] = m[p * 3] * rn[0] + m[p * 3 + 1] * rn[1] + m[p * 3 + 2] * rn[2];
    });
  }
  const char* name() const override { return "nodal-block-jacobi"; }

 private:
  std::vector<double> inv_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace

const Preconditioner& ThermoSolver::ensurePreconditioner() const {
  if (precond_) return *precond_;
  VIADUCT_SPAN("fea.precond_setup");
  switch (activeKind_) {
    case FeaPreconditionerKind::kBlockJacobi: {
      // Element diagonal blocks gathered per node (partitioned across the
      // pool), constrained dofs replaced by identity, then inverted.
      const Index nodes = grid_.nodeCount();
      const Index nodesPerRow = grid_.nx() + 1;
      const Index nodesPerSlab = nodesPerRow * (grid_.ny() + 1);
      std::vector<double> inverses(static_cast<std::size_t>(nodes) * 9, 0.0);
      std::vector<double> blocks(static_cast<std::size_t>(nodes) * 9, 0.0);
      parallelFor(pool_, 0, nodes, kNodeGrain, [&](std::int64_t ni) {
        const Index node = static_cast<Index>(ni);
        const Index K = node / nodesPerSlab;
        const Index rem = node % nodesPerSlab;
        const Index J = rem / nodesPerRow;
        const Index I = rem % nodesPerRow;
        double* blk = &blocks[static_cast<std::size_t>(node) * 9];
        forEachAdjacentCell(grid_, I, J, K,
                            [&](Index cell, int n, Index, Index, Index) {
                              const Hex8Operators& ops =
                                  *cellOps_[static_cast<std::size_t>(cell)];
                              for (int p = 0; p < 3; ++p)
                                for (int q = 0; q < 3; ++q)
                                  blk[p * 3 + q] +=
                                      ops.stiffness[(3 * n + p) * kHexDofs +
                                                    (3 * n + q)];
                            });
      });
      parallelFor(pool_, 0, nodes, kNodeGrain, [&](std::int64_t ni) {
        const Index n = static_cast<Index>(ni);
        double* blk = &blocks[static_cast<std::size_t>(n) * 9];
        for (int d = 0; d < 3; ++d) {
          if (!constrained_[n * 3 + d]) continue;
          for (int q = 0; q < 3; ++q) {
            blk[d * 3 + q] = 0.0;
            blk[q * 3 + d] = 0.0;
          }
          blk[d * 3 + d] = 1.0;
        }
        DenseMatrix m(3, 3);
        for (int p = 0; p < 3; ++p)
          for (int q = 0; q < 3; ++q) m(p, q) = blk[p * 3 + q];
        DenseMatrix rhs = DenseMatrix::identity(3);
        const DenseMatrix inv = m.solveMultiple(rhs);
        double* out = &inverses[static_cast<std::size_t>(n) * 9];
        for (int p = 0; p < 3; ++p)
          for (int q = 0; q < 3; ++q) out[p * 3 + q] = inv(p, q);
      });
      precond_ =
          std::make_unique<NodalBlockPreconditioner>(std::move(inverses),
                                                     pool_);
      break;
    }
    case FeaPreconditionerKind::kIc0: {
      const CsrMatrix k = assembleCsrStiffness();
      precond_ = std::make_unique<IncompleteCholeskyPreconditioner>(k);
      break;
    }
    case FeaPreconditionerKind::kMultigrid: {
      precond_ = std::make_unique<VoxelStressMultigrid>(
          grid_, constrained_, cellOps_, options_.multigrid, pool_);
      break;
    }
  }
  return *precond_;
}

CsrMatrix ThermoSolver::assembleCsrStiffness() const {
  // The shared assembler takes a byte mask (vector<bool> has no spans).
  std::vector<std::uint8_t> mask(constrained_.size());
  for (std::size_t i = 0; i < constrained_.size(); ++i)
    mask[i] = constrained_[i] ? 1 : 0;
  return assembleVoxelStiffnessCsr(grid_, mask, cellOps_, pool_);
}

CgResult ThermoSolver::solve() {
  if (solved_) return lastCg_;
  VIADUCT_SPAN("fea.solve");
  VIADUCT_COUNTER_ADD("fea.solves", 1);
  const VoxelElasticityOperator op(*this);
  const std::vector<double> f = assembleThermalLoad();

  displacements_.assign(f.size(), 0.0);
  CgOptions cgOpts;
  cgOpts.relativeTolerance = options_.cgRelativeTolerance;
  cgOpts.maxIterations = options_.cgMaxIterations;
  cgOpts.pool = pool_;
  // The policy owns failure handling: a stall returns converged = false and
  // a NaN residual throws NumericalError, both of which feed the retry
  // ladder below (each rung restarts from a zero guess — a poisoned iterate
  // must not warm-start the retry).
  cgOpts.throwOnStall = false;
  const fault::FailurePolicy& policy = options_.policy;
  const int attempts = policy.enabled ? 1 + std::max(0, policy.cgRetries) : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      VIADUCT_COUNTER_ADD("fault.policy.fea_retries", 1);
      cgOpts.relativeTolerance *= policy.retryToleranceTighten;
      cgOpts.maxIterations = static_cast<int>(
          static_cast<double>(cgOpts.maxIterations) *
          policy.retryIterationGrowth);
      std::fill(displacements_.begin(), displacements_.end(), 0.0);
      if (activeKind_ == FeaPreconditionerKind::kMultigrid) {
        // Degradation ladder: a failed multigrid solve retries on IC(0)
        // before the tightened-tolerance rungs continue — a broken
        // hierarchy (e.g. an injected NaN) must not poison every retry.
        VIADUCT_COUNTER_ADD("fault.policy.fea_precond_fallbacks", 1);
        VIADUCT_WARN << "FEA multigrid solve failed; degrading to IC(0) "
                        "for the retry";
        activeKind_ = FeaPreconditionerKind::kIc0;
        precond_.reset();
      }
    }
    try {
      VIADUCT_SPAN("fea.cg_solve");
      const Preconditioner& precond = ensurePreconditioner();
      // Multigrid mode runs CG's matvec on the hierarchy's fine-level
      // stencil operator; the ladder's IC(0) rung falls back to the
      // matrix-free gather together with the preconditioner swap.
      std::optional<StencilElasticityOperator> stencilOp;
      if (activeKind_ == FeaPreconditionerKind::kMultigrid)
        stencilOp.emplace(
            static_cast<const VoxelStressMultigrid&>(precond).fineOperator());
      const LinearOperator& cgOp =
          stencilOp ? static_cast<const LinearOperator&>(*stencilOp)
                    : static_cast<const LinearOperator&>(op);
      lastCg_ = conjugateGradient(cgOp, f, displacements_, precond, cgOpts);
    } catch (const NumericalError&) {
      lastCg_ = CgResult{};
      if (!policy.enabled) throw;
      continue;
    }
    if (lastCg_.converged) break;
  }
  VIADUCT_DEBUG << "FEA solve: " << lastCg_.iterations << " CG iterations, "
                << grid_.nodeCount() * 3 << " dof";
  if (!lastCg_.converged) {
    // A non-converged displacement field must never silently feed the
    // stress probes: surface the failure so the caller's FailurePolicy
    // (kAbort / kDiscard / kSalvage) decides the trial's fate.
    VIADUCT_WARN << "FEA CG did not converge after " << attempts
                 << " attempt(s): " << lastCg_.iterations
                 << " iterations, relative residual "
                 << lastCg_.relativeResidual;
    throw NumericalError(
        "FEA thermo-stress CG did not converge after policy retries");
  }
  solved_ = true;
  return lastCg_;
}

CgResult ThermoSolver::solveSystem(std::span<const double> rhs,
                                   std::span<double> x) const {
  VIADUCT_REQUIRE(rhs.size() ==
                      static_cast<std::size_t>(grid_.nodeCount()) * 3 &&
                  x.size() == rhs.size());
  const VoxelElasticityOperator op(*this);
  CgOptions cgOpts;
  cgOpts.relativeTolerance = options_.cgRelativeTolerance;
  cgOpts.maxIterations = options_.cgMaxIterations;
  cgOpts.pool = pool_;
  cgOpts.throwOnStall = false;
  VIADUCT_SPAN("fea.cg_solve");
  const Preconditioner& precond = ensurePreconditioner();
  std::optional<StencilElasticityOperator> stencilOp;
  if (activeKind_ == FeaPreconditionerKind::kMultigrid)
    stencilOp.emplace(
        static_cast<const VoxelStressMultigrid&>(precond).fineOperator());
  const LinearOperator& cgOp =
      stencilOp ? static_cast<const LinearOperator&>(*stencilOp)
                : static_cast<const LinearOperator&>(op);
  return conjugateGradient(cgOp, rhs, x, precond, cgOpts);
}

void ThermoSolver::applyStiffness(std::span<const double> x,
                                  std::span<double> y) const {
  const VoxelElasticityOperator op(*this);
  op.apply(x, y);
}

std::array<double, 3> ThermoSolver::displacement(Index i, Index j,
                                                 Index k) const {
  VIADUCT_REQUIRE_MSG(solved_, "call solve() first");
  const Index n = grid_.nodeIndex(i, j, k);
  return {displacements_[n * 3 + 0], displacements_[n * 3 + 1],
          displacements_[n * 3 + 2]};
}

void ThermoSolver::gatherElement(std::span<const double> u, Index i, Index j,
                                 Index k, std::span<double> ue) const {
  for (int n = 0; n < kHexNodes; ++n) {
    const Index node =
        grid_.nodeIndex(i + (n & 1), j + ((n >> 1) & 1), k + ((n >> 2) & 1));
    for (int d = 0; d < 3; ++d) ue[3 * n + d] = u[node * 3 + d];
  }
}

std::array<double, kStrainComponents> ThermoSolver::cellStress(
    Index i, Index j, Index k) const {
  VIADUCT_REQUIRE_MSG(solved_, "call solve() first");
  std::array<double, kHexDofs> ue{};
  gatherElement(displacements_, i, j, k, ue);
  return hex8CentroidStress(materialProperties(grid_.material(i, j, k)),
                            grid_.cellSizeX(i), grid_.cellSizeY(j),
                            grid_.cellSizeZ(k), deltaT_, ue);
}

double ThermoSolver::cellHydrostatic(Index i, Index j, Index k) const {
  return hydrostatic(cellStress(i, j, k));
}

ThermoSolver::Profile ThermoSolver::hydrostaticProfileX(Index j,
                                                        Index k) const {
  Profile p;
  p.x.reserve(static_cast<std::size_t>(grid_.nx()));
  p.sigmaH.reserve(static_cast<std::size_t>(grid_.nx()));
  for (Index i = 0; i < grid_.nx(); ++i) {
    p.x.push_back(grid_.cellCenterX(i));
    p.sigmaH.push_back(cellHydrostatic(i, j, k));
  }
  return p;
}

double ThermoSolver::peakHydrostatic(
    Index i0, Index i1, Index j0, Index j1, Index k0, Index k1,
    std::optional<MaterialId> onlyMaterial) const {
  VIADUCT_REQUIRE(i0 >= 0 && i1 <= grid_.nx() && j0 >= 0 && j1 <= grid_.ny() &&
                  k0 >= 0 && k1 <= grid_.nz());
  double peak = -std::numeric_limits<double>::infinity();
  for (Index k = k0; k < k1; ++k)
    for (Index j = j0; j < j1; ++j)
      for (Index i = i0; i < i1; ++i) {
        if (onlyMaterial && grid_.material(i, j, k) != *onlyMaterial) continue;
        peak = std::max(peak, cellHydrostatic(i, j, k));
      }
  VIADUCT_REQUIRE_MSG(std::isfinite(peak),
                      "no cells matched the requested material/box");
  return peak;
}

}  // namespace viaduct
