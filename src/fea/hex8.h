// 8-node hexahedral (brick) element for linear thermoelasticity on
// axis-aligned voxels, with full 2×2×2 Gauss integration.
//
// Local node numbering: node i has lattice bits (a, b, c) = (i&1, (i>>1)&1,
// (i>>2)&1) mapping to the global node (ix+a, iy+b, iz+c); parent
// coordinates of node i are (2a−1, 2b−1, 2c−1). Strain uses engineering
// (Voigt) order [εxx, εyy, εzz, γxy, γyz, γzx].
#pragma once

#include <array>
#include <span>

#include "fea/material.h"

namespace viaduct {

inline constexpr int kHexNodes = 8;
inline constexpr int kHexDofs = 24;
inline constexpr int kStrainComponents = 6;

/// Precomputed element operators for one (material, cell size, ΔT) combo.
struct Hex8Operators {
  /// 24×24 symmetric stiffness, row-major.
  std::array<double, kHexDofs * kHexDofs> stiffness{};
  /// Equivalent nodal load of the thermal strain ε_th = αΔT·I.
  std::array<double, kHexDofs> thermalLoad{};
};

/// Computes stiffness and thermal load for an hx×hy×hz box of `mat` subject
/// to a uniform temperature change `deltaT` (negative when cooling from the
/// anneal temperature, which produces tensile stress in high-CTE metal).
Hex8Operators computeHex8Operators(const Material& mat, double hx, double hy,
                                   double hz, double deltaT);

/// Mechanical stress at the element centroid: σ = C(Bu − ε_th).
/// `elementDisplacements` is the 24-vector in local node order.
std::array<double, kStrainComponents> hex8CentroidStress(
    const Material& mat, double hx, double hy, double hz, double deltaT,
    std::span<const double> elementDisplacements);

/// Hydrostatic component of a Voigt stress vector: (σxx+σyy+σzz)/3.
double hydrostatic(const std::array<double, kStrainComponents>& stress);

/// Von Mises equivalent of a Voigt stress vector (diagnostics/tests).
double vonMises(const std::array<double, kStrainComponents>& stress);

}  // namespace viaduct
