// Stencil-compressed voxel stiffness operator.
//
// On a voxel mesh the assembled stiffness row of a node is a 27-point
// stencil of 3×3 blocks, and that stencil is entirely determined by the
// (up to) 8 element operators adjacent to the node. Structured grids —
// layered stacks, via arrays, any painted geometry — contain large uniform
// regions where thousands of nodes share the exact same adjacency, so the
// distinct stencils form a small dictionary: each node stores only a
// pattern id. An apply then streams x, y, and the ids (a few MB) while the
// dictionary stays cache-resident, which on bandwidth-starved cores is
// several times faster than a CSR sweep over the full 27·9 doubles per
// node (and never worse: a pathological grid where every node is distinct
// degenerates to exactly the CSR footprint).
//
// Dirichlet semantics match the matrix-free gather operator: constrained
// dofs are identity rows, constrained columns are masked out. The apply
// gathers x into a zero-padded halo copy (masking constrained dofs during
// the copy), so the stencil sweep itself is branch-free and in-bounds for
// boundary nodes. Per-node arithmetic is a fixed-order sum over the 27
// neighbors, partitioned with a fixed grain: results are bit-identical for
// every pool size.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "fea/hex8.h"
#include "fea/voxel_grid.h"

namespace viaduct {

class NodeStencilOperator {
 public:
  NodeStencilOperator() = default;

  /// `constrained` is the per-dof Dirichlet mask, `cellOperators` the
  /// per-cell Hex8 stiffness (borrowed; must outlive the operator).
  NodeStencilOperator(const VoxelGrid& grid,
                      std::span<const std::uint8_t> constrained,
                      std::span<const Hex8Operators* const> cellOperators,
                      ThreadPool* pool);

  /// y = A x (constrained dofs: y = x). Reuses an internal halo buffer, so
  /// concurrent applies on the same instance are not supported.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// Number of distinct 27-point block stencils in the dictionary.
  std::size_t distinctStencils() const { return table_.size() / kStencilSize; }

  Index dofCount() const { return nodes_ * 3; }

 private:
  // 27 neighbors × 3×3 block, [neighbor][row][col].
  static constexpr std::size_t kStencilSize = 27 * 9;

  Index nodes_ = 0;
  Index nx_ = 0, ny_ = 0, nz_ = 0;
  ThreadPool* pool_ = nullptr;
  std::vector<std::uint8_t> constrained_;
  std::vector<Index> patternId_;            // per node
  std::vector<double> table_;               // distinct stencils, packed
  std::array<std::ptrdiff_t, 27> offsets_;  // halo-node offsets, fixed order
  mutable std::vector<double> halo_;        // padded masked copy of x
};

}  // namespace viaduct
