// Thermoelastic finite-element solver on a voxel grid.
//
// Governing physics: static linear elasticity with a uniform thermal strain
// ε_th = α(T_operate − T_anneal)·I per material. Cooling from the anneal
// temperature puts high-CTE copper confined by low-CTE dielectric into
// tension — the thermomechanical stress σ_T of the paper.
//
// Boundary conditions: the substrate bottom is clamped (u = 0); the four
// side faces are rollers (zero normal displacement), modeling continuation
// of the die beyond the simulated window; the top surface is free. Pattern
// (Plus/T/L) differences enter through the painted geometry, not the BCs.
//
// The solve is matrix-free: on a voxel mesh all elements sharing a
// (material, cell-size) pair have identical 24×24 stiffness matrices, so
// the operator stores one matrix per distinct pair and applies them in a
// gather–scatter sweep. Preconditioning is nodal 3×3 block-Jacobi.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "fault/policy.h"
#include "fea/hex8.h"
#include "fea/voxel_grid.h"
#include "numerics/cg.h"

namespace viaduct {

struct ThermoSolverOptions {
  /// Anneal (stress-free reference) and operating temperatures [°C].
  double annealTemperatureC = 350.0;
  double operatingTemperatureC = 105.0;

  double cgRelativeTolerance = 1e-7;
  int cgMaxIterations = 20000;

  /// Failure policy for the CG solve: a stalled or NaN-poisoned solve is
  /// retried `cgRetries` times from a zero guess with a tightened tolerance
  /// and a grown iteration cap before the non-convergence propagates to the
  /// caller through cgResult().
  fault::FailurePolicy policy;

  /// Worker pool shared with the caller (borrowed, not owned). When null
  /// the solver creates its own pool from `parallelism`. All assembly and
  /// CG kernels partition work with fixed compile-time grains, so the
  /// solution is bit-identical for every pool size (including 1).
  ThreadPool* pool = nullptr;
  Parallelism parallelism;
};

class ThermoSolver {
 public:
  ThermoSolver(const VoxelGrid& grid, const ThermoSolverOptions& options);
  explicit ThermoSolver(const VoxelGrid& grid)
      : ThermoSolver(grid, ThermoSolverOptions{}) {}

  /// Assembles loads and solves for the displacement field. Returns CG
  /// statistics. Idempotent (re-solving is a no-op after success, returning
  /// the original statistics).
  CgResult solve();

  /// Convergence data of the last (only) CG solve — iterations, achieved
  /// relative residual, converged flag. Zero-initialized before solve().
  const CgResult& cgResult() const { return lastCg_; }

  /// ΔT = T_operate − T_anneal [K] (negative: cooling).
  double deltaT() const { return deltaT_; }

  /// Nodal displacement (must be solved first).
  std::array<double, 3> displacement(Index i, Index j, Index k) const;

  /// Centroid Voigt stress of a cell (mechanical stress, thermal strain
  /// subtracted), i.e. the stress a sensor in the material would feel.
  std::array<double, kStrainComponents> cellStress(Index i, Index j,
                                                   Index k) const;

  /// Hydrostatic stress of a cell, σ_H = tr(σ)/3.
  double cellHydrostatic(Index i, Index j, Index k) const;

  /// Samples σ_H along the x axis through cell row (j, k): one value per
  /// cell column, at cell centers. This realizes the paper's Figure 1/6/7
  /// "stress along the wire beneath the via" probes.
  struct Profile {
    std::vector<double> x;       // cell-center coordinates [m]
    std::vector<double> sigmaH;  // hydrostatic stress [Pa]
  };
  Profile hydrostaticProfileX(Index j, Index k) const;

  /// Peak σ_H over an axis-aligned cell box [i0,i1)×[j0,j1)×[k0,k1)
  /// restricted to cells of `onlyMaterial` (pass std::nullopt for all).
  double peakHydrostatic(Index i0, Index i1, Index j0, Index j1, Index k0,
                         Index k1,
                         std::optional<MaterialId> onlyMaterial) const;

  const VoxelGrid& grid() const { return grid_; }
  bool solved() const { return solved_; }

 private:
  friend class VoxelElasticityOperator;

  void setupConstraints();
  void buildOperators();
  std::vector<double> assembleThermalLoad() const;

  const Hex8Operators& cellOperators(Index i, Index j, Index k) const;
  void gatherElement(std::span<const double> u, Index i, Index j, Index k,
                     std::span<double> ue) const;

  const VoxelGrid& grid_;
  ThermoSolverOptions options_;
  double deltaT_ = 0.0;

  std::unique_ptr<ThreadPool> ownedPool_;
  ThreadPool* pool_ = nullptr;  // always non-null after construction

  // Distinct element operators keyed by (material, quantized cell sizes).
  std::map<std::tuple<int, long long, long long, long long>, Hex8Operators>
      operatorCache_;
  std::vector<const Hex8Operators*> cellOps_;  // per cell

  std::vector<bool> constrained_;  // per dof
  std::vector<double> displacements_;
  CgResult lastCg_;
  bool solved_ = false;
};

}  // namespace viaduct
