// Thermoelastic finite-element solver on a voxel grid.
//
// Governing physics: static linear elasticity with a uniform thermal strain
// ε_th = α(T_operate − T_anneal)·I per material. Cooling from the anneal
// temperature puts high-CTE copper confined by low-CTE dielectric into
// tension — the thermomechanical stress σ_T of the paper.
//
// Boundary conditions: the substrate bottom is clamped (u = 0); the four
// side faces are rollers (zero normal displacement), modeling continuation
// of the die beyond the simulated window; the top surface is free. Pattern
// (Plus/T/L) differences enter through the painted geometry, not the BCs.
//
// The solve is matrix-free: on a voxel mesh all elements sharing a
// (material, cell-size) pair have identical 24×24 stiffness matrices, so
// the operator stores one matrix per distinct pair and applies them in a
// gather–scatter sweep.
//
// Preconditioning is selectable (DESIGN.md §5.12): nodal 3×3 block-Jacobi
// (the seed default), IC(0) on the assembled stiffness, or the geometric
// multigrid V-cycle from fea/multigrid.h. Under an enabled FailurePolicy a
// failed multigrid solve degrades to IC(0) on retry before the
// non-convergence escalates to the caller as a NumericalError.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "fault/policy.h"
#include "fea/hex8.h"
#include "fea/multigrid.h"
#include "fea/voxel_grid.h"
#include "numerics/cg.h"

namespace viaduct {

/// CG preconditioner for the thermoelastic solve. kBlockJacobi reproduces
/// the seed solver bit-for-bit; kMultigrid is the fast path for production
/// meshes; kIc0 is the robust middle rung the failure ladder degrades to.
enum class FeaPreconditionerKind {
  kBlockJacobi = 0,
  kIc0 = 1,
  kMultigrid = 2,
};

/// Short stable names used by the CLI flag and cache-key tags:
/// "bj", "ic0", "mg".
const char* feaPreconditionerName(FeaPreconditionerKind kind);

/// Inverse of feaPreconditionerName; nullopt for unknown names.
std::optional<FeaPreconditionerKind> parseFeaPreconditionerName(
    std::string_view name);

struct ThermoSolverOptions {
  /// Anneal (stress-free reference) and operating temperatures [°C].
  double annealTemperatureC = 350.0;
  double operatingTemperatureC = 105.0;

  double cgRelativeTolerance = 1e-7;
  int cgMaxIterations = 20000;

  /// CG preconditioner; kBlockJacobi preserves the seed solver exactly.
  FeaPreconditionerKind preconditioner = FeaPreconditionerKind::kBlockJacobi;

  /// Hierarchy settings for kMultigrid (ignored otherwise).
  MultigridOptions multigrid;

  /// Failure policy for the CG solve: a stalled or NaN-poisoned solve is
  /// retried `cgRetries` times from a zero guess with a tightened tolerance
  /// and a grown iteration cap (a multigrid solve additionally degrades to
  /// IC(0) on its first retry) before the non-convergence is thrown to the
  /// caller as a NumericalError.
  fault::FailurePolicy policy;

  /// Worker pool shared with the caller (borrowed, not owned). When null
  /// the solver creates its own pool from `parallelism`. All assembly and
  /// CG kernels partition work with fixed compile-time grains, so the
  /// solution is bit-identical for every pool size (including 1).
  ThreadPool* pool = nullptr;
  Parallelism parallelism;
};

class ThermoSolver {
 public:
  ThermoSolver(const VoxelGrid& grid, const ThermoSolverOptions& options);
  explicit ThermoSolver(const VoxelGrid& grid)
      : ThermoSolver(grid, ThermoSolverOptions{}) {}

  /// Assembles loads and solves for the displacement field. Returns CG
  /// statistics. Idempotent (re-solving is a no-op after success, returning
  /// the original statistics). Throws NumericalError when the solve has not
  /// converged after the policy's retry ladder is exhausted — a
  /// non-converged displacement field must never feed stress probes
  /// silently.
  CgResult solve();

  /// Solves K x = rhs with the configured preconditioner: one plain CG
  /// solve, no retry ladder, solver state untouched. `rhs` must vanish on
  /// constrained dofs (use constrainedMask()); `x` is the initial guess and
  /// the result. This is the harness for convergence studies (the MMS test,
  /// perf_fea_mg) that need the linear solver without the thermal load.
  CgResult solveSystem(std::span<const double> rhs, std::span<double> x) const;

  /// y = K x (the matrix-free stiffness with constrained identity rows) —
  /// lets tests manufacture consistent right-hand sides.
  void applyStiffness(std::span<const double> x, std::span<double> y) const;

  /// Per-dof Dirichlet mask (3 dof per node, x/y/z interleaved).
  const std::vector<bool>& constrainedMask() const { return constrained_; }

  /// The preconditioner in effect: the configured kind, or the ladder's
  /// degraded kind after a multigrid solve failed and retried on IC(0).
  FeaPreconditionerKind activePreconditioner() const { return activeKind_; }

  /// Convergence data of the last (only) CG solve — iterations, achieved
  /// relative residual, converged flag. Zero-initialized before solve().
  const CgResult& cgResult() const { return lastCg_; }

  /// ΔT = T_operate − T_anneal [K] (negative: cooling).
  double deltaT() const { return deltaT_; }

  /// Nodal displacement (must be solved first).
  std::array<double, 3> displacement(Index i, Index j, Index k) const;

  /// Centroid Voigt stress of a cell (mechanical stress, thermal strain
  /// subtracted), i.e. the stress a sensor in the material would feel.
  std::array<double, kStrainComponents> cellStress(Index i, Index j,
                                                   Index k) const;

  /// Hydrostatic stress of a cell, σ_H = tr(σ)/3.
  double cellHydrostatic(Index i, Index j, Index k) const;

  /// Samples σ_H along the x axis through cell row (j, k): one value per
  /// cell column, at cell centers. This realizes the paper's Figure 1/6/7
  /// "stress along the wire beneath the via" probes.
  struct Profile {
    std::vector<double> x;       // cell-center coordinates [m]
    std::vector<double> sigmaH;  // hydrostatic stress [Pa]
  };
  Profile hydrostaticProfileX(Index j, Index k) const;

  /// Peak σ_H over an axis-aligned cell box [i0,i1)×[j0,j1)×[k0,k1)
  /// restricted to cells of `onlyMaterial` (pass std::nullopt for all).
  double peakHydrostatic(Index i0, Index i1, Index j0, Index j1, Index k0,
                         Index k1,
                         std::optional<MaterialId> onlyMaterial) const;

  const VoxelGrid& grid() const { return grid_; }
  bool solved() const { return solved_; }

 private:
  friend class VoxelElasticityOperator;

  void setupConstraints();
  void buildOperators();
  std::vector<double> assembleThermalLoad() const;

  /// Builds (once) and returns the preconditioner for `activeKind_`.
  const Preconditioner& ensurePreconditioner() const;

  /// Assembles the global CSR stiffness (constrained dofs as identity
  /// rows/columns) for the IC(0) path — node-gathered, rows emitted in
  /// sorted order.
  CsrMatrix assembleCsrStiffness() const;

  const Hex8Operators& cellOperators(Index i, Index j, Index k) const;
  void gatherElement(std::span<const double> u, Index i, Index j, Index k,
                     std::span<double> ue) const;

  const VoxelGrid& grid_;
  ThermoSolverOptions options_;
  double deltaT_ = 0.0;

  std::unique_ptr<ThreadPool> ownedPool_;
  ThreadPool* pool_ = nullptr;  // always non-null after construction

  // Distinct element operators keyed by (material, quantized cell sizes).
  std::map<std::tuple<int, long long, long long, long long>, Hex8Operators>
      operatorCache_;
  std::vector<const Hex8Operators*> cellOps_;  // per cell

  std::vector<bool> constrained_;  // per dof
  std::vector<double> displacements_;
  CgResult lastCg_;
  bool solved_ = false;

  /// Lazily built preconditioner; rebuilt when the failure ladder swaps
  /// kinds. Mutable because solveSystem() is logically const.
  mutable std::unique_ptr<Preconditioner> precond_;
  mutable FeaPreconditionerKind activeKind_ =
      FeaPreconditionerKind::kBlockJacobi;
};

}  // namespace viaduct
