#include "fea/material.h"

#include "common/check.h"
#include "common/units.h"

namespace viaduct {

double Material::lameLambda() const {
  return youngsModulusPa * poissonRatio /
         ((1.0 + poissonRatio) * (1.0 - 2.0 * poissonRatio));
}

double Material::lameMu() const {
  return youngsModulusPa / (2.0 * (1.0 + poissonRatio));
}

double Material::bulkModulus() const {
  return youngsModulusPa / (3.0 * (1.0 - 2.0 * poissonRatio));
}

const std::array<Material, kMaterialCount>& materialTable() {
  using namespace units;
  // Table 1: mechanical properties of materials in Cu DD.
  static const std::array<Material, kMaterialCount> table = {{
      {"silicon", 162.0 * GPa, 0.28, 3.05 * ppmPerC},
      {"copper", 111.6 * GPa, 0.34, 17.7 * ppmPerC},
      {"SiCOH", 16.2 * GPa, 0.27, 12.0 * ppmPerC},
      {"tantalum", 185.7 * GPa, 0.342, 6.5 * ppmPerC},
      {"Si3N4", 222.8 * GPa, 0.27, 3.2 * ppmPerC},
  }};
  return table;
}

const Material& materialProperties(MaterialId id) {
  const auto idx = static_cast<std::size_t>(id);
  VIADUCT_REQUIRE(idx < static_cast<std::size_t>(kMaterialCount));
  return materialTable()[idx];
}

}  // namespace viaduct
