#include "common/lognormal.h"

#include <cmath>

#include "common/check.h"

namespace viaduct {

double normalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normalQuantile(double p) {
  VIADUCT_REQUIRE(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the true CDF.
  const double e = normalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  VIADUCT_REQUIRE_MSG(sigma >= 0.0, "lognormal sigma must be >= 0");
  VIADUCT_REQUIRE(std::isfinite(mu) && std::isfinite(sigma));
}

Lognormal Lognormal::fromMeanStddev(double mean, double stddev) {
  VIADUCT_REQUIRE(mean > 0.0 && stddev >= 0.0);
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return Lognormal(mu, std::sqrt(sigma2));
}

Lognormal Lognormal::fromMedian(double median, double sigma) {
  VIADUCT_REQUIRE(median > 0.0);
  return Lognormal(std::log(median), sigma);
}

double Lognormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double Lognormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return std::expm1(s2) * std::exp(2.0 * mu_ + s2);
}

double Lognormal::stddev() const { return std::sqrt(variance()); }

double Lognormal::median() const { return std::exp(mu_); }

double Lognormal::sample(Rng& rng) const { return rng.lognormal(mu_, sigma_); }

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (sigma_ == 0.0) return x >= std::exp(mu_) ? 1.0 : 0.0;
  return normalCdf((std::log(x) - mu_) / sigma_);
}

double Lognormal::quantile(double p) const {
  VIADUCT_REQUIRE(p > 0.0 && p < 1.0);
  return std::exp(mu_ + sigma_ * normalQuantile(p));
}

double Lognormal::pdf(double x) const {
  if (x <= 0.0 || sigma_ == 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

Lognormal Lognormal::fitMle(std::span<const double> samples) {
  VIADUCT_REQUIRE_MSG(samples.size() >= 2, "need >= 2 samples to fit");
  double sum = 0.0;
  for (double x : samples) {
    VIADUCT_REQUIRE_MSG(x > 0.0, "lognormal samples must be positive");
    sum += std::log(x);
  }
  const double mu = sum / static_cast<double>(samples.size());
  double ss = 0.0;
  for (double x : samples) {
    const double d = std::log(x) - mu;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / static_cast<double>(samples.size()));
  return Lognormal(mu, sigma);
}

Lognormal Lognormal::fitMoments(std::span<const double> samples) {
  VIADUCT_REQUIRE(samples.size() >= 2);
  double mean = 0.0;
  for (double x : samples) {
    VIADUCT_REQUIRE(x > 0.0);
    mean += x;
  }
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double x : samples) var += (x - mean) * (x - mean);
  var /= static_cast<double>(samples.size() - 1);
  return fromMeanStddev(mean, std::sqrt(var));
}

Lognormal Lognormal::wilkinsonSum(std::span<const Lognormal> terms) {
  VIADUCT_REQUIRE(!terms.empty());
  // Match the first two moments of the exact sum of independent lognormals.
  double m1 = 0.0;
  double m2c = 0.0;  // central second moment (variance) of the sum
  for (const auto& t : terms) {
    m1 += t.mean();
    m2c += t.variance();
  }
  if (m2c <= 0.0) return Lognormal(std::log(m1), 0.0);
  return fromMeanStddev(m1, std::sqrt(m2c));
}

Lognormal Lognormal::product(std::span<const Lognormal> terms,
                             std::span<const double> exponents) {
  VIADUCT_REQUIRE(terms.size() == exponents.size() && !terms.empty());
  // log X = sum_i e_i log X_i is Gaussian exactly (independent terms).
  double mu = 0.0;
  double var = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    mu += exponents[i] * terms[i].mu();
    var += exponents[i] * exponents[i] * terms[i].sigma() * terms[i].sigma();
  }
  return Lognormal(mu, std::sqrt(var));
}

Lognormal Lognormal::scaled(double c) const {
  VIADUCT_REQUIRE(c > 0.0);
  return Lognormal(mu_ + std::log(c), sigma_);
}

}  // namespace viaduct
