// Text-table and CSV emission helpers, used by the bench harnesses to print
// paper-style tables/series and to dump plottable data.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace viaduct {

/// Column-aligned text table with a header row, printed in a style suitable
/// for terminal diffing against the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must match the header width.
  void addRow(std::vector<std::string> row);

  /// Formats a double with the given precision, trimming trailing zeros.
  static std::string num(double v, int precision = 3);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows as RFC-4180-ish CSV (no quoting needed for our numeric data).
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, const std::vector<std::string>& header);
  void writeRow(const std::vector<double>& values);
  void writeRow(const std::vector<std::string>& values);

 private:
  std::ostream& os_;
  std::size_t width_;
};

}  // namespace viaduct
