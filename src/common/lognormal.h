// Lognormal distribution utilities.
//
// The paper's TTF statistics are lognormal throughout: the flaw radius R_f
// (and hence the critical stress sigma_C via Eq. 4), the effective
// diffusivity D_eff, and — via Wilkinson's approximation — the nucleation
// time itself. This header provides a value-type lognormal with sampling,
// CDF/quantile evaluation, fitting from samples (log-space MLE) and from
// linear-space moments, plus Wilkinson's moment-matching approximation for
// sums and products of lognormals.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"

namespace viaduct {

/// Lognormal distribution parameterized in log space:
/// X = exp(N(mu, sigma^2)), sigma >= 0 (sigma == 0 degenerates to a point).
class Lognormal {
 public:
  Lognormal() = default;
  Lognormal(double mu, double sigma);

  /// Construct from linear-space mean and standard deviation (both > 0 for
  /// mean; stddev >= 0).
  static Lognormal fromMeanStddev(double mean, double stddev);

  /// Construct from the median and the multiplicative sigma exp(sigma).
  static Lognormal fromMedian(double median, double sigma);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  double mean() const;
  double variance() const;
  double stddev() const;
  double median() const;

  double sample(Rng& rng) const;

  /// P(X <= x). Zero for x <= 0.
  double cdf(double x) const;

  /// Inverse CDF; p in (0, 1).
  double quantile(double p) const;

  /// Probability density at x (> 0).
  double pdf(double x) const;

  /// Log-space maximum-likelihood fit. Requires all samples > 0 and
  /// samples.size() >= 2.
  static Lognormal fitMle(std::span<const double> samples);

  /// Moment-matching fit from linear-space sample mean/variance.
  static Lognormal fitMoments(std::span<const double> samples);

  /// Wilkinson approximation of sum_i X_i, X_i ~ Lognormal(terms[i]),
  /// independent: matches the first two moments of the (exact) sum with a
  /// single lognormal. Requires at least one term.
  static Lognormal wilkinsonSum(std::span<const Lognormal> terms);

  /// Exact distribution of a product of independent lognormals (and powers
  /// of one lognormal): product_i X_i^e_i. Used for TTF ∝ sigma_eff^2/Deff.
  static Lognormal product(std::span<const Lognormal> terms,
                           std::span<const double> exponents);

  /// Scales X by a positive constant c (shifts mu by log c).
  Lognormal scaled(double c) const;

 private:
  double mu_ = 0.0;
  double sigma_ = 1.0;
};

/// Standard normal CDF Phi(x) via erfc.
double normalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined
/// with one Halley step; |error| < 1e-9 over (0,1)).
double normalQuantile(double p);

}  // namespace viaduct
