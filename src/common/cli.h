// A tiny declarative command-line flag parser for the bench harnesses and
// examples: `--name value`, `--name=value`, and boolean `--flag` forms.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace viaduct {

/// Declarative flag registry. Register flags bound to variables, then call
/// parse(argc, argv). Unknown flags raise PreconditionError; `--help` prints
/// usage and returns false from parse().
class CliFlags {
 public:
  explicit CliFlags(std::string programDescription);

  void addInt(const std::string& name, int* target, const std::string& help);
  void addDouble(const std::string& name, double* target,
                 const std::string& help);
  void addString(const std::string& name, std::string* target,
                 const std::string& help);
  void addBool(const std::string& name, bool* target, const std::string& help);

  /// Returns false if --help was requested (usage already printed).
  bool parse(int argc, const char* const* argv);

  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string defaultValue;
    bool isBool = false;
    std::function<void(const std::string&)> set;
  };

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace viaduct
