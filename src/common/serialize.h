// Shared text (de)serialization helpers for the on-disk stores
// (viaarray/cache.h, checkpoint/checkpoint.h).
//
// Both stores are line-oriented text files whose payload lines are
// whitespace-separated doubles. The helpers here pin down the two contracts
// the stores rely on:
//   - round-trip exactness: doubles are written at max_digits10 (17
//     significant digits) and infinities keep their sign ("inf" / "-inf");
//   - corrupt input is a *value*, not an exception: parseDoubles returns
//     std::nullopt on any malformed token (garbage, "nan", overflow such as
//     "1e999999", truncated writes), so a damaged file degrades to a cache
//     miss / fresh start instead of crashing the loader.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace viaduct {

/// Writes `v` space-separated at full round-trip precision (17 significant
/// digits). Infinities are written as "inf" / "-inf"; NaN is rejected by
/// contract (the stores never hold NaN) and is written as "nan", which
/// parseDoubles refuses, so a NaN can never silently round-trip.
void writeDoubles(std::ostream& os, const std::vector<double>& v);

/// Convenience: writeDoubles into a string.
std::string formatDoubles(const std::vector<double>& v);

/// Parses a whitespace-separated list of doubles. Returns std::nullopt on
/// any malformed token: non-numeric garbage, "nan" (in any case), values
/// that overflow a double (e.g. "1e999999"), or trailing junk fused to a
/// number ("1.5x"). "inf" and "-inf" parse to signed infinities. An empty
/// (or all-whitespace) string parses to an empty vector.
std::optional<std::vector<double>> parseDoubles(std::string_view s);

/// Locale-independent replacement for std::stod over a whole token:
/// parses `s` as one double (optional leading '+' or '-', decimal or
/// scientific notation, "inf"/"infinity"/"nan" spellings as from_chars
/// accepts them) and returns std::nullopt when the token is empty, does
/// not parse, overflows, or carries trailing junk ("1.5x"). Unlike
/// std::stod this never consults the global C locale — "1.5" means 1.5
/// under de_DE just as under C — never throws, and rejects leading
/// whitespace.
std::optional<double> parseDoubleToken(std::string_view s);

/// Suffix-position variant of parseDoubleToken for grammars that carry a
/// magnitude suffix fused to the number ("1.5k", "2meg"): parses the
/// longest leading double of `s` and stores the number of characters it
/// consumed in `*consumed` (the suffix starts there). Returns std::nullopt
/// — with *consumed = 0 — when `s` does not start with a number.
std::optional<double> parseDoublePrefix(std::string_view s,
                                        std::size_t* consumed);

/// Locale-independent full-token integer parse (from_chars): optional
/// leading '+' or '-', base 10 only. std::nullopt on empty input, trailing
/// junk, or overflow.
std::optional<long long> parseIntToken(std::string_view s);

/// FNV-1a 64-bit hash (stable across platforms; used for config keys).
std::uint64_t fnv1aHash(std::string_view s);

}  // namespace viaduct
