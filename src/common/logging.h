// Minimal leveled logger writing to stderr. Benches and examples use INFO;
// the library itself logs only at DEBUG/WARN so it stays quiet by default.
#pragma once

#include <sstream>
#include <string>

namespace viaduct {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// kText is the default human-readable line; kJson emits one JSON object
/// per line ({"ts","level","tid","msg"}) for log shippers. Initialised
/// from the environment: VIADUCT_LOG_JSON=1 selects kJson at startup.
enum class LogFormat { kText = 0, kJson = 1 };
void setLogFormat(LogFormat format);
LogFormat logFormat();

namespace detail {
void emitLog(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emitLog(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace viaduct

#define VIADUCT_LOG(level)                                      \
  if (static_cast<int>(::viaduct::LogLevel::level) <            \
      static_cast<int>(::viaduct::logLevel())) {                \
  } else                                                        \
    ::viaduct::detail::LogLine(::viaduct::LogLevel::level)

#define VIADUCT_DEBUG VIADUCT_LOG(kDebug)
#define VIADUCT_INFO VIADUCT_LOG(kInfo)
#define VIADUCT_WARN VIADUCT_LOG(kWarn)
#define VIADUCT_ERROR VIADUCT_LOG(kError)
