#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace viaduct {

namespace {
/// Pool whose runChunks() the current thread is executing inside, if any.
thread_local const ThreadPool* t_currentPool = nullptr;
}  // namespace

int Parallelism::resolved() const {
  VIADUCT_REQUIRE_MSG(threads >= 0, "thread count must be >= 0");
  return threads > 0 ? threads : ThreadPool::hardwareConcurrency();
}

int Parallelism::resolvedFor(std::int64_t workItems) const {
  const std::int64_t cap = std::max<std::int64_t>(1, workItems);
  return static_cast<int>(std::min<std::int64_t>(resolved(), cap));
}

struct ThreadPool::Job {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t chunkCount = 0;
  const ChunkFn* fn = nullptr;

  std::atomic<std::int64_t> nextChunk{0};
  std::atomic<std::int64_t> doneChunks{0};
  std::atomic<bool> abort{false};
  std::mutex errorMutex;
  std::exception_ptr error;
};

int ThreadPool::hardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threadCount)
    : threadCount_(std::max(1, threadCount)) {
  workers_.reserve(static_cast<std::size_t>(threadCount_ - 1));
  for (int i = 0; i + 1 < threadCount_; ++i)
    workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  workAvailable_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerMain() {
  std::uint64_t seenSeq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workAvailable_.wait(
          lock, [&] { return stop_ || (job_ && jobSeq_ != seenSeq); });
      if (stop_) return;
      seenSeq = jobSeq_;
      job = job_;
    }
    participate(*job, /*fromWorker=*/true);
  }
}

void ThreadPool::participate(Job& job, bool fromWorker) {
  const ThreadPool* prev = t_currentPool;
  t_currentPool = this;
  for (;;) {
    const std::int64_t c = job.nextChunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunkCount) break;
    if (!job.abort.load(std::memory_order_relaxed)) {
      try {
        const std::int64_t b = job.begin + c * job.grain;
        const std::int64_t e = std::min(b + job.grain, job.end);
        // Worker-vs-caller split is the pool's utilization telemetry: with
        // idle workers the caller should win only its fair share of chunks.
        if (fromWorker) {
          VIADUCT_COUNTER_ADD("pool.chunks_by_worker", 1);
        } else {
          VIADUCT_COUNTER_ADD("pool.chunks_by_caller", 1);
        }
        // Keyed on the chunk index (not a per-thread stream) so the same
        // chunk fails regardless of which lane picks it up.
        if (fault::shouldInjectAt("pool.job",
                                  static_cast<std::uint64_t>(c))) {
          throw fault::InjectedFault("pool job chunk " + std::to_string(c) +
                                     " failed (injected fault)");
        }
        (*job.fn)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.errorMutex);
        if (!job.error) job.error = std::current_exception();
        job.abort.store(true, std::memory_order_relaxed);
      }
    }
    if (job.doneChunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.chunkCount) {
      std::lock_guard<std::mutex> lock(mutex_);
      jobDone_.notify_all();
    }
  }
  t_currentPool = prev;
}

void ThreadPool::runChunks(std::int64_t begin, std::int64_t end,
                           std::int64_t grain, const ChunkFn& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunkCount = (end - begin + grain - 1) / grain;

  // Inline serial path: single-lane pool, a single chunk, or a nested call
  // from one of this pool's own workers. Chunk boundaries are identical to
  // the parallel path so per-chunk reductions see the same layout.
  if (threadCount_ == 1 || chunkCount == 1 || t_currentPool == this) {
    VIADUCT_COUNTER_ADD("pool.jobs_inline", 1);
    VIADUCT_COUNTER_ADD("pool.chunks_inline", chunkCount);
    for (std::int64_t c = 0; c < chunkCount; ++c) {
      if (fault::shouldInjectAt("pool.job", static_cast<std::uint64_t>(c))) {
        throw fault::InjectedFault("pool job chunk " + std::to_string(c) +
                                   " failed (injected fault)");
      }
      const std::int64_t b = begin + c * grain;
      fn(b, std::min(b + grain, end));
    }
    return;
  }

  // The pool has no persistent task queue — each job IS the queue, drained
  // chunk by chunk — so the chunk count at submission is the queue depth.
  VIADUCT_COUNTER_ADD("pool.jobs", 1);
  VIADUCT_HISTOGRAM_OBSERVE("pool.queue_depth_chunks", chunkCount,
                            ::viaduct::obs::Buckets::exponential(1, 2, 16));

  std::lock_guard<std::mutex> outerLock(runMutex_);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->chunkCount = chunkCount;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++jobSeq_;
  }
  workAvailable_.notify_all();
  participate(*job, /*fromWorker=*/false);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    jobDone_.wait(lock, [&] {
      return job->doneChunks.load(std::memory_order_acquire) ==
             job->chunkCount;
    });
    job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace viaduct
