#include "common/progress.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace viaduct {

namespace {
std::string fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string etaString(double seconds) {
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) return "?";
  const auto s = static_cast<std::int64_t>(seconds + 0.5);
  if (s < 120) return std::to_string(s) + "s";
  if (s < 7200) return std::to_string(s / 60) + "m" + std::to_string(s % 60) + "s";
  return std::to_string(s / 3600) + "h" + std::to_string((s % 3600) / 60) + "m";
}
}  // namespace

ProgressReporter::ProgressReporter(std::string label, std::int64_t totalTrials,
                                   Options options)
    : label_(std::move(label)),
      total_(totalTrials),
      options_(std::move(options)),
      startNs_(obs::nowNs()) {
  nextReportAt_.store(options_.reportEverySeconds, std::memory_order_relaxed);
}

ProgressReporter::~ProgressReporter() { reportNow(); }

double ProgressReporter::elapsedSeconds() const {
  return static_cast<double>(obs::nowNs() - startNs_) * 1e-9;
}

void ProgressReporter::seedCompleted(std::int64_t alreadyDone) {
  if (alreadyDone <= 0) return;
  completed_.fetch_add(alreadyDone, std::memory_order_relaxed);
  lastReportCompleted_.fetch_add(alreadyDone, std::memory_order_relaxed);
}

void ProgressReporter::trialDone(std::int64_t discarded, std::int64_t salvaged) {
  if (discarded > 0) discarded_.fetch_add(discarded, std::memory_order_relaxed);
  if (salvaged > 0) salvaged_.fetch_add(salvaged, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);

  // Rate-limited slow path: the worker that crosses the interval boundary
  // claims the emission slot with one CAS; everyone else pays two relaxed
  // atomics and returns.
  const double now = elapsedSeconds();
  double due = nextReportAt_.load(std::memory_order_relaxed);
  if (now < due) return;
  if (!nextReportAt_.compare_exchange_strong(
          due, now + options_.reportEverySeconds, std::memory_order_relaxed))
    return;
  report(now, /*force=*/false);
}

void ProgressReporter::reportNow() { report(elapsedSeconds(), /*force=*/true); }

void ProgressReporter::report(double nowSeconds, bool force) {
  const std::int64_t done = completed_.load(std::memory_order_relaxed);
  const std::int64_t discarded = discarded_.load(std::memory_order_relaxed);
  const std::int64_t salvaged = salvaged_.load(std::memory_order_relaxed);

  const double lastAt = lastReportAt_.exchange(nowSeconds,
                                               std::memory_order_relaxed);
  const std::int64_t lastDone =
      lastReportCompleted_.exchange(done, std::memory_order_relaxed);
  const double dt = nowSeconds - lastAt;
  double rate = ewmaRate_.load(std::memory_order_relaxed);
  if (dt > 1e-9 && done > lastDone) {
    const double instant = static_cast<double>(done - lastDone) / dt;
    rate = rate <= 0.0 ? instant
                       : rate + options_.ewmaAlpha * (instant - rate);
    ewmaRate_.store(rate, std::memory_order_relaxed);
  }

  const bool haveTotal = total_ > 0;
  const double fraction =
      haveTotal ? static_cast<double>(done) / static_cast<double>(total_) : 0.0;
  const double remaining =
      haveTotal ? static_cast<double>(total_ - done) : 0.0;
  const double eta = (haveTotal && rate > 0.0) ? remaining / rate
                                               : std::nan("");

  double checkpointAge = std::nan("");
  if (options_.checkpointAgeSeconds)
    checkpointAge = options_.checkpointAgeSeconds();

  if (obs::enabled()) {
    auto& reg = obs::Registry::instance();
    reg.gauge(label_ + ".trials_completed").set(static_cast<double>(done));
    reg.gauge(label_ + ".trials_discarded").set(static_cast<double>(discarded));
    reg.gauge(label_ + ".trials_salvaged").set(static_cast<double>(salvaged));
    reg.gauge(label_ + ".trials_per_second_ewma").set(rate);
    if (haveTotal) {
      reg.gauge(label_ + ".fraction_done").set(fraction);
      reg.gauge(label_ + ".eta_seconds").set(eta);
    }
    if (options_.checkpointAgeSeconds)
      reg.gauge(label_ + ".checkpoint_age_seconds").set(checkpointAge);
  }

  // Skip the final forced line when nothing ran (e.g. a resumed loop with
  // zero outstanding trials) so quiet tools stay quiet.
  if (force && done == 0) return;

  std::string msg = label_ + ": " + std::to_string(done);
  if (haveTotal) {
    msg += "/" + std::to_string(total_) + " trials (" +
           fixed1(fraction * 100.0) + "%)";
  } else {
    msg += " trials";
  }
  msg += ", " + fixed1(rate) + " trials/s";
  if (haveTotal && done < total_) msg += ", ETA " + etaString(eta);
  if (discarded > 0) msg += ", discarded " + std::to_string(discarded);
  if (salvaged > 0) msg += ", salvaged " + std::to_string(salvaged);
  if (std::isfinite(checkpointAge) && checkpointAge >= 0.0)
    msg += ", checkpoint age " + fixed1(checkpointAge) + "s";
  if (force && haveTotal && done >= total_)
    msg += ", done in " + etaString(nowSeconds);
  VIADUCT_INFO << msg;
}

}  // namespace viaduct
