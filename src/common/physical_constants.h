// Fundamental physical constants (SI), CODATA values.
#pragma once

namespace viaduct::constants {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Electron-volt [J].
inline constexpr double kElectronVolt = 1.602176634e-19;

}  // namespace viaduct::constants
