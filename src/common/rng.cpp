#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace viaduct {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Golden-ratio spread of the stream index followed by a splitmix64 step:
  // bijective in `stream` for a fixed seed, so no two streams share the
  // derived seed, and the full 4-word state is then expanded as usual.
  std::uint64_t x = seed + (stream + 1) * 0x9e3779b97f4a7c15ull;
  std::uint64_t sm = splitmix64(x);
  for (auto& s : s_) s = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VIADUCT_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniformInt(std::uint64_t n) {
  VIADUCT_REQUIRE(n > 0);
  // Lemire-style rejection-free-enough bounded draw; bias is negligible for
  // the n used in MC ordering but we reject to be exact.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::gaussian() {
  if (hasSpare_) {
    hasSpare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  hasSpare_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) {
  VIADUCT_REQUIRE(stddev >= 0.0);
  return mean + stddev * gaussian();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(gaussian(mu, sigma));
}

Rng Rng::split() {
  // Derive a child seed from two draws; the streams are independent for all
  // practical MC purposes.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ rotl(b, 31));
}

}  // namespace viaduct
