#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "obs/metrics.h"

namespace viaduct {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

/// UTC ISO-8601 timestamp with millisecond resolution, e.g.
/// 2026-08-05T14:03:22.123Z.
std::string isoTimestamp() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

namespace detail {
void emitLog(LogLevel level, const std::string& msg) {
  // Format the whole line first and write it with a single call: pool
  // workers log concurrently, and streaming the prefix and message as
  // separate << calls interleaves their output. The thread id is the same
  // dense index obs uses for shards and trace events.
  std::string line;
  line.reserve(msg.size() + 64);
  line += "[viaduct ";
  line += levelName(level);
  line += ' ';
  line += isoTimestamp();
  line += " t";
  line += std::to_string(obs::threadIndex());
  line += "] ";
  line += msg;
  line += '\n';
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
}
}  // namespace detail

}  // namespace viaduct
