#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

#include "obs/metrics.h"

namespace viaduct {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

LogFormat initialLogFormat() {
  const char* env = std::getenv("VIADUCT_LOG_JSON");
  return (env && env[0] == '1' && env[1] == '\0') ? LogFormat::kJson
                                                  : LogFormat::kText;
}
std::atomic<LogFormat> g_format{initialLogFormat()};

/// Trimmed level name for the JSON format (the text format pads WARN/INFO
/// to align columns; JSON consumers want the bare token).
const char* levelToken(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

void appendJsonEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

/// UTC ISO-8601 timestamp with millisecond resolution, e.g.
/// 2026-08-05T14:03:22.123Z.
std::string isoTimestamp() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void setLogFormat(LogFormat format) { g_format.store(format); }
LogFormat logFormat() { return g_format.load(); }

namespace detail {
void emitLog(LogLevel level, const std::string& msg) {
  // Format the whole line first and write it with a single call: pool
  // workers log concurrently, and streaming the prefix and message as
  // separate << calls interleaves their output. The thread id is the same
  // dense index obs uses for shards and trace events.
  std::string line;
  line.reserve(msg.size() + 64);
  if (g_format.load() == LogFormat::kJson) {
    line += "{\"ts\":\"";
    line += isoTimestamp();
    line += "\",\"level\":\"";
    line += levelToken(level);
    line += "\",\"tid\":";
    line += std::to_string(obs::threadIndex());
    line += ",\"msg\":\"";
    appendJsonEscaped(&line, msg);
    line += "\"}\n";
  } else {
    line += "[viaduct ";
    line += levelName(level);
    line += ' ';
    line += isoTimestamp();
    line += " t";
    line += std::to_string(obs::threadIndex());
    line += "] ";
    line += msg;
    line += '\n';
  }
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
}
}  // namespace detail

}  // namespace viaduct
