#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace viaduct {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

namespace detail {
void emitLog(LogLevel level, const std::string& msg) {
  std::cerr << "[viaduct " << levelName(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace viaduct
