#include "common/cli.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/serialize.h"

namespace viaduct {

CliFlags::CliFlags(std::string programDescription)
    : description_(std::move(programDescription)) {}

void CliFlags::addInt(const std::string& name, int* target,
                      const std::string& help) {
  VIADUCT_REQUIRE(target != nullptr);
  Flag f;
  f.help = help;
  f.defaultValue = std::to_string(*target);
  f.set = [target, name](const std::string& v) {
    std::size_t pos = 0;
    const int parsed = std::stoi(v, &pos);
    VIADUCT_REQUIRE_MSG(pos == v.size(), "bad integer for --" + name);
    *target = parsed;
  };
  flags_[name] = std::move(f);
}

void CliFlags::addDouble(const std::string& name, double* target,
                         const std::string& help) {
  VIADUCT_REQUIRE(target != nullptr);
  Flag f;
  f.help = help;
  std::ostringstream os;
  os << *target;
  f.defaultValue = os.str();
  f.set = [target, name](const std::string& v) {
    // Locale-independent (common/serialize): std::stod under a comma
    // LC_NUMERIC truncated "--flag 1.5" to 1 without complaint.
    const auto parsed = parseDoubleToken(v);
    VIADUCT_REQUIRE_MSG(parsed.has_value(), "bad number for --" + name);
    *target = *parsed;
  };
  flags_[name] = std::move(f);
}

void CliFlags::addString(const std::string& name, std::string* target,
                         const std::string& help) {
  VIADUCT_REQUIRE(target != nullptr);
  Flag f;
  f.help = help;
  f.defaultValue = *target;
  f.set = [target](const std::string& v) { *target = v; };
  flags_[name] = std::move(f);
}

void CliFlags::addBool(const std::string& name, bool* target,
                       const std::string& help) {
  VIADUCT_REQUIRE(target != nullptr);
  Flag f;
  f.help = help;
  f.defaultValue = *target ? "true" : "false";
  f.isBool = true;
  f.set = [target, name](const std::string& v) {
    if (v == "true" || v == "1" || v.empty()) {
      *target = true;
    } else if (v == "false" || v == "0") {
      *target = false;
    } else {
      VIADUCT_REQUIRE_MSG(false, "bad boolean for --" + name);
    }
  };
  flags_[name] = std::move(f);
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    VIADUCT_REQUIRE_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool hasValue = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasValue = true;
    }
    const auto it = flags_.find(arg);
    VIADUCT_REQUIRE_MSG(it != flags_.end(), "unknown flag: --" + arg);
    if (!hasValue && !it->second.isBool) {
      VIADUCT_REQUIRE_MSG(i + 1 < argc, "missing value for --" + arg);
      value = argv[++i];
    }
    it->second.set(value);
  }
  return true;
}

std::string CliFlags::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << (flag.isBool ? "" : " <value>") << "\n      "
       << flag.help << " (default: " << flag.defaultValue << ")\n";
  }
  return os.str();
}

}  // namespace viaduct
