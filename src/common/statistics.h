// Sample statistics: summary moments, empirical CDF, and percentile
// extraction. Used to post-process Monte Carlo TTF samples into the
// CDF curves and worst-case (0.3 %ile) values the paper reports.
#pragma once

#include <span>
#include <vector>

namespace viaduct {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; requires count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical distribution over a fixed sample set (sorted on construction).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// Fraction of samples <= x.
  double cdf(double x) const;

  /// Linearly-interpolated percentile, p in [0, 1]. p=0 -> min, p=1 -> max.
  double quantile(double p) const;

  /// The paper's "worst-case TTF": the 0.3rd percentile (p = 0.003).
  double worstCase() const { return quantile(0.003); }

  double median() const { return quantile(0.5); }
  double mean() const;

 private:
  std::vector<double> sorted_;
};

/// Two-sided Kolmogorov–Smirnov statistic between samples and a reference
/// CDF evaluated by `refCdf` at each sorted sample.
double ksStatistic(std::span<const double> sortedSamples,
                   const std::vector<double>& refCdfAtSamples);

/// Percentile-bootstrap confidence interval for a quantile estimate.
/// Monte Carlo TTF percentiles (especially the paper's 0.3 %ile at
/// Ntrials = 500) carry real sampling error; this quantifies it.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double width() const { return upper - lower; }
};

class Rng;  // common/rng.h

/// `p` is the estimated quantile (e.g. 0.003), `confidence` the interval
/// mass (e.g. 0.95). Requires >= 2 samples and resamples >= 50.
ConfidenceInterval bootstrapQuantileCi(std::span<const double> samples,
                                       double p, double confidence,
                                       int resamples, Rng& rng);

}  // namespace viaduct
