// Deterministic, fast pseudo-random number generation.
//
// Monte Carlo reliability runs must be reproducible across platforms, so we
// do not use std::mt19937 + std::normal_distribution (whose outputs are not
// pinned by the standard for all library implementations in the same order).
// Instead: xoshiro256** seeded via splitmix64, with our own uniform /
// Gaussian / lognormal transforms.
#pragma once

#include <cstdint>

namespace viaduct {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded with splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Counter-based stream constructor for parallel Monte Carlo: the state
  /// is a pure function of (seed, stream), so worker threads can construct
  /// the stream for any trial index directly and the trial→sample mapping
  /// never depends on scheduling or thread count. Distinct streams of the
  /// same seed are independent for all practical MC purposes.
  Rng(std::uint64_t seed, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  /// Uniform in [0, 1) with 53 random bits.
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniformInt(std::uint64_t n);

  /// Standard Gaussian via polar Marsaglia (cached second deviate).
  double gaussian();

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Lognormal: exp(N(mu, sigma^2)). `mu`/`sigma` are the log-space params.
  double lognormal(double mu, double sigma);

  /// Splits off an independently-seeded child stream (for parallel MC).
  Rng split();

 private:
  std::uint64_t next();

  std::uint64_t s_[4];
  bool hasSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace viaduct
