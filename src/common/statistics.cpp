#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace viaduct {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  VIADUCT_REQUIRE(n_ >= 1);
  return mean_;
}

double RunningStats::variance() const {
  VIADUCT_REQUIRE(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  VIADUCT_REQUIRE(n_ >= 1);
  return min_;
}

double RunningStats::max() const {
  VIADUCT_REQUIRE(n_ >= 1);
  return max_;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  VIADUCT_REQUIRE_MSG(!sorted_.empty(), "empty sample set");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  VIADUCT_REQUIRE(p >= 0.0 && p <= 1.0);
  if (sorted_.size() == 1) return sorted_.front();
  // Linear interpolation between order statistics (type-7 quantile).
  const double h = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  const double frac = h - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double EmpiricalCdf::mean() const {
  double s = 0.0;
  for (double x : sorted_) s += x;
  return s / static_cast<double>(sorted_.size());
}

ConfidenceInterval bootstrapQuantileCi(std::span<const double> samples,
                                       double p, double confidence,
                                       int resamples, Rng& rng) {
  VIADUCT_REQUIRE(samples.size() >= 2);
  VIADUCT_REQUIRE(p >= 0.0 && p <= 1.0);
  VIADUCT_REQUIRE(confidence > 0.0 && confidence < 1.0);
  VIADUCT_REQUIRE(resamples >= 50);

  const std::size_t n = samples.size();
  std::vector<double> estimates;
  estimates.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> resample(n);
  for (int r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i)
      resample[i] = samples[rng.uniformInt(n)];
    estimates.push_back(EmpiricalCdf(resample).quantile(p));
  }
  EmpiricalCdf dist(std::move(estimates));
  const double alpha = 1.0 - confidence;
  return {dist.quantile(0.5 * alpha), dist.quantile(1.0 - 0.5 * alpha)};
}

double ksStatistic(std::span<const double> sortedSamples,
                   const std::vector<double>& refCdfAtSamples) {
  VIADUCT_REQUIRE(sortedSamples.size() == refCdfAtSamples.size());
  VIADUCT_REQUIRE(!sortedSamples.empty());
  const double n = static_cast<double>(sortedSamples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sortedSamples.size(); ++i) {
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::abs(refCdfAtSamples[i] - lo));
    d = std::max(d, std::abs(refCdfAtSamples[i] - hi));
  }
  return d;
}

}  // namespace viaduct
