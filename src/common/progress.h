// Progress/ETA reporting for long-running trial loops (Monte Carlo at both
// levels, FEA sweeps).
//
// A ProgressReporter is owned by the loop driver and fed by whichever
// worker thread finishes a trial. It does two things:
//
//   1. Maintains live gauges in the obs registry, so a scrape of the
//      telemetry HTTP endpoint mid-run answers "how far along is it":
//      <label>.trials_completed, <label>.trials_discarded,
//      <label>.trials_salvaged, <label>.trials_per_second_ewma,
//      <label>.eta_seconds, <label>.fraction_done, and (when a checkpoint
//      age supplier is attached) <label>.checkpoint_age_seconds.
//
//   2. Emits a rate-limited single-write INFO log line (at most one per
//      reporting interval; the CLI default log level is WARN, so runs stay
//      quiet unless --progress or VIADUCT_LOG_JSON consumers opt in).
//
// There is no background thread: the worker that happens to cross the
// reporting interval claims the emission slot with one CAS and does the
// formatting itself. Progress never feeds back into trial execution, so
// results are bit-identical whether reporting is on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace viaduct {

class ProgressReporter {
 public:
  struct Options {
    /// Minimum seconds between INFO lines and gauge refreshes.
    double reportEverySeconds = 5.0;
    /// Smoothing factor for the trials-per-second EWMA (per report).
    double ewmaAlpha = 0.3;
    /// Optional supplier of "seconds since the checkpoint last wrote";
    /// exposed as <label>.checkpoint_age_seconds when set. Called only
    /// from the reporting slow path.
    std::function<double()> checkpointAgeSeconds;
  };

  /// `label` prefixes every gauge and log line (e.g. "grid_mc",
  /// "viaarray"); `totalTrials` <= 0 disables ETA/fraction gauges.
  ProgressReporter(std::string label, std::int64_t totalTrials,
                   Options options);
  ProgressReporter(std::string label, std::int64_t totalTrials)
      : ProgressReporter(std::move(label), totalTrials, Options{}) {}
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Credits trials finished before this loop started (checkpoint resume)
  /// so fraction/ETA cover the whole run, without polluting the rate EWMA.
  /// Call before the first trialDone().
  void seedCompleted(std::int64_t alreadyDone);

  /// Thread-safe; called by workers as trials finish. Discarded trials
  /// failed a validity screen; salvaged ones recovered via a fault-policy
  /// retry. All three count toward the completion total.
  void trialDone(std::int64_t discarded = 0, std::int64_t salvaged = 0);

  /// Forces a report now (gauges + INFO line), e.g. at loop exit.
  void reportNow();

  std::int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void report(double nowSeconds, bool force);
  /// Monotonic seconds since construction.
  double elapsedSeconds() const;

  const std::string label_;
  const std::int64_t total_;
  const Options options_;
  const std::uint64_t startNs_;

  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> discarded_{0};
  std::atomic<std::int64_t> salvaged_{0};
  /// Next elapsed-seconds threshold at which a report may fire; workers
  /// claim it by CAS so exactly one formats the line.
  std::atomic<double> nextReportAt_;
  /// Completed count and timestamp at the previous report, for the EWMA.
  std::atomic<std::int64_t> lastReportCompleted_{0};
  std::atomic<double> lastReportAt_{0.0};
  std::atomic<double> ewmaRate_{0.0};
};

}  // namespace viaduct
