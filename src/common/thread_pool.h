// Deterministic shared-memory parallelism primitives.
//
// ThreadPool runs chunked index ranges across a fixed set of workers plus
// the calling thread. Everything is built on runChunks(), whose chunk
// layout depends only on (begin, end, grain) — never on the worker count —
// so any per-chunk computation combined in chunk order yields bit-identical
// results for every thread count, including 1 (which executes inline on the
// caller with no pool machinery involved). A nested call issued from inside
// one of this pool's workers degrades to inline serial execution instead of
// deadlocking or oversubscribing.
//
// The Monte Carlo layers pair this with counter-based RNG streams
// (Rng(seed, trialIndex)): each work item derives its randomness from its
// index alone, so the trial→sample mapping is a pure function of the seed
// and results cannot depend on scheduling. See DESIGN.md §5.5.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace viaduct {

/// Thread-count configuration carried through analysis configs and CLI
/// flags. 0 requests one lane per hardware thread; 1 is strictly serial.
struct Parallelism {
  int threads = 0;

  /// Lane count this config resolves to (>= 1).
  int resolved() const;

  /// Lane count clamped to the number of independent work items.
  int resolvedFor(std::int64_t workItems) const;
};

class ThreadPool {
 public:
  using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;

  /// A pool with `threadCount` execution lanes total: the calling thread
  /// participates in every run, so threadCount - 1 workers are spawned and
  /// ThreadPool(1) spawns none.
  explicit ThreadPool(int threadCount);
  explicit ThreadPool(const Parallelism& parallelism)
      : ThreadPool(parallelism.resolved()) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threadCount() const { return threadCount_; }

  static int hardwareConcurrency();

  /// Partitions [begin, end) into chunks of `grain` (the last one ragged)
  /// and runs fn(chunkBegin, chunkEnd) over all of them. Blocks until every
  /// chunk completed; the first exception thrown by any chunk is rethrown
  /// on the caller (remaining chunks are skipped). Chunk boundaries are a
  /// function of (begin, end, grain) only.
  void runChunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const ChunkFn& fn);

  /// fn(i) for every i in [begin, end), distributed in chunks of `grain`.
  template <typename Fn>
  void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   Fn&& fn) {
    runChunks(begin, end, grain, [&fn](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) fn(i);
    });
  }

  /// Deterministic reduction: map(chunkBegin, chunkEnd) produces one partial
  /// per chunk; partials are combined in chunk order on the caller, so the
  /// result is bit-identical for any thread count given the same grain.
  template <typename T, typename ChunkMap, typename Combine>
  T parallelReduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   T identity, ChunkMap&& map, Combine&& combine) {
    if (end <= begin) return identity;
    if (grain < 1) grain = 1;
    const std::int64_t chunks = (end - begin + grain - 1) / grain;
    std::vector<T> partials(static_cast<std::size_t>(chunks), identity);
    runChunks(begin, end, grain, [&](std::int64_t b, std::int64_t e) {
      partials[static_cast<std::size_t>((b - begin) / grain)] = map(b, e);
    });
    T acc = identity;
    for (const T& p : partials) acc = combine(acc, p);
    return acc;
  }

 private:
  struct Job;

  void workerMain();
  void participate(Job& job, bool fromWorker);

  int threadCount_ = 1;
  std::vector<std::thread> workers_;

  std::mutex runMutex_;  // serializes concurrent runChunks() submissions

  std::mutex mutex_;
  std::condition_variable workAvailable_;
  std::condition_variable jobDone_;
  std::shared_ptr<Job> job_;
  std::uint64_t jobSeq_ = 0;
  bool stop_ = false;
};

/// Serial-or-parallel dispatch used by kernels that accept an optional
/// pool: nullptr runs the plain loop inline.
template <typename Fn>
void parallelFor(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                 std::int64_t grain, Fn&& fn) {
  if (pool) {
    pool->parallelFor(begin, end, grain, std::forward<Fn>(fn));
  } else {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
  }
}

}  // namespace viaduct
