#include "common/serialize.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace viaduct {

namespace {

void appendDouble(std::ostream& os, double x) {
  if (std::isinf(x)) {
    os << (x < 0.0 ? "-inf" : "inf");
    return;
  }
  // %.17g round-trips every finite double and is independent of the
  // stream's formatting state. NaN prints "nan", which parseDoubles
  // refuses — a NaN never silently survives a round-trip.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  os << buf;
}

bool parseToken(std::string_view tok, double* out) {
  if (tok == "inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (tok == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc() || ptr != tok.data() + tok.size()) return false;
  // from_chars also accepts "nan"/"infinity" spellings; only the finite
  // values and the explicit tokens above are part of the store format.
  if (std::isnan(value) || std::isinf(value)) return false;
  *out = value;
  return true;
}

}  // namespace

void writeDoubles(std::ostream& os, const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ' ';
    appendDouble(os, v[i]);
  }
}

std::string formatDoubles(const std::vector<double>& v) {
  std::ostringstream os;
  writeDoubles(os, v);
  return os.str();
}

std::optional<std::vector<double>> parseDoubles(std::string_view s) {
  std::vector<double> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    if (i >= s.size()) break;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    double value = 0.0;
    if (!parseToken(s.substr(i, j - i), &value)) return std::nullopt;
    out.push_back(value);
    i = j;
  }
  return out;
}

std::optional<double> parseDoublePrefix(std::string_view s,
                                        std::size_t* consumed) {
  if (consumed) *consumed = 0;
  // from_chars does not accept an explicit '+' sign (std::stod did, and
  // both the CLI and SPICE decks use it), so strip it here.
  const bool plus = !s.empty() && s.front() == '+';
  const std::string_view body = plus ? s.substr(1) : s;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value);
  if (ptr == body.data()) return std::nullopt;  // no leading number at all
  if (ec == std::errc::result_out_of_range) return std::nullopt;
  if (ec != std::errc()) return std::nullopt;
  if (consumed)
    *consumed = static_cast<std::size_t>(ptr - body.data()) + (plus ? 1 : 0);
  return value;
}

std::optional<double> parseDoubleToken(std::string_view s) {
  std::size_t consumed = 0;
  const auto value = parseDoublePrefix(s, &consumed);
  if (!value || consumed != s.size()) return std::nullopt;
  return value;
}

std::optional<long long> parseIntToken(std::string_view s) {
  const bool plus = !s.empty() && s.front() == '+';
  const std::string_view body = plus ? s.substr(1) : s;
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec != std::errc() || ptr != body.data() + body.size() || body.empty())
    return std::nullopt;
  return value;
}

std::uint64_t fnv1aHash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace viaduct
