// Contract-checking macros used throughout viaduct.
//
// Following the C++ Core Guidelines (I.6/I.8), preconditions and invariants
// are stated explicitly. Violations throw, carrying the failed expression
// and source location, so that library misuse is diagnosable rather than UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace viaduct {

/// Thrown when a VIADUCT_CHECK (internal invariant) fails.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a VIADUCT_REQUIRE (caller precondition) fails.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown for malformed external input (netlist files, tables, ...).
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a numerical routine fails to converge or is ill-posed.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void failCheck(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'R') throw PreconditionError(os.str());
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace viaduct

/// Internal invariant; failure indicates a bug inside viaduct.
#define VIADUCT_CHECK(expr)                                                 \
  do {                                                                      \
    if (!(expr))                                                            \
      ::viaduct::detail::failCheck("CHECK", #expr, __FILE__, __LINE__, ""); \
  } while (false)

#define VIADUCT_CHECK_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr))                                                             \
      ::viaduct::detail::failCheck("CHECK", #expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Caller-facing precondition; failure indicates API misuse.
#define VIADUCT_REQUIRE(expr)                                                 \
  do {                                                                        \
    if (!(expr))                                                              \
      ::viaduct::detail::failCheck("REQUIRE", #expr, __FILE__, __LINE__, ""); \
  } while (false)

#define VIADUCT_REQUIRE_MSG(expr, msg)                                    \
  do {                                                                    \
    if (!(expr))                                                          \
      ::viaduct::detail::failCheck("REQUIRE", #expr, __FILE__, __LINE__,  \
                                   msg);                                  \
  } while (false)
