// Unit helpers. All viaduct internals are strict SI (m, s, K, Pa, A, V, Ω).
// These constexpr factors convert common EDA units to SI and back, so that
// literals in user code read naturally, e.g. `2.0 * units::um`.
#pragma once

namespace viaduct::units {

// Length.
inline constexpr double m = 1.0;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// Time. A Julian year, the conventional reliability-engineering year.
inline constexpr double second = 1.0;
inline constexpr double hour = 3600.0;
inline constexpr double day = 86400.0;
inline constexpr double year = 365.25 * day;

// Pressure / stress.
inline constexpr double Pa = 1.0;
inline constexpr double MPa = 1e6;
inline constexpr double GPa = 1e9;

// Temperature helpers (absolute Kelvin internally).
inline constexpr double kelvinFromCelsius(double c) { return c + 273.15; }
inline constexpr double celsiusFromKelvin(double k) { return k - 273.15; }

// CTE is stored in 1/K; data sheets quote ppm/°C.
inline constexpr double ppmPerC = 1e-6;

}  // namespace viaduct::units
