#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace viaduct {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  VIADUCT_REQUIRE(!header_.empty());
}

void TextTable::addRow(std::vector<std::string> row) {
  VIADUCT_REQUIRE_MSG(row.size() == header_.size(),
                      "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto printRow = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };

  auto printSep = [&]() {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-');
      os << (c + 1 == widths.size() ? "+" : "+");
    }
    os << '\n';
  };

  printSep();
  printRow(header_);
  printSep();
  for (const auto& row : rows_) printRow(row);
  printSep();
}

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& header)
    : os_(os), width_(header.size()) {
  VIADUCT_REQUIRE(!header.empty());
  for (std::size_t i = 0; i < header.size(); ++i) {
    os_ << header[i];
    if (i + 1 < header.size()) os_ << ',';
  }
  os_ << '\n';
}

void CsvWriter::writeRow(const std::vector<double>& values) {
  VIADUCT_REQUIRE(values.size() == width_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    os_ << values[i];
    if (i + 1 < values.size()) os_ << ',';
  }
  os_ << '\n';
}

void CsvWriter::writeRow(const std::vector<std::string>& values) {
  VIADUCT_REQUIRE(values.size() == width_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    os_ << values[i];
    if (i + 1 < values.size()) os_ << ',';
  }
  os_ << '\n';
}

}  // namespace viaduct
