#include "viaarray/characterize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/progress.h"
#include "em/korhonen.h"
#include "fault/fault.h"
#include "fea/thermo_solver.h"
#include "obs/obs.h"
#include "structures/probes.h"
#include "viaarray/cache.h"
#include "viaarray/primitive_store.h"

namespace viaduct {

ViaArrayFailureCriterion ViaArrayFailureCriterion::weakestLink() {
  return {.kind = Kind::kViaCount, .viaCount = 1, .ratio = 0.0};
}

ViaArrayFailureCriterion ViaArrayFailureCriterion::kthVia(int k) {
  VIADUCT_REQUIRE(k >= 1);
  return {.kind = Kind::kViaCount, .viaCount = k, .ratio = 0.0};
}

ViaArrayFailureCriterion ViaArrayFailureCriterion::resistanceRatio(
    double ratio) {
  VIADUCT_REQUIRE(ratio > 1.0);
  return {.kind = Kind::kResistanceRatio, .viaCount = 0, .ratio = ratio};
}

ViaArrayFailureCriterion ViaArrayFailureCriterion::openCircuit() {
  return {.kind = Kind::kOpen, .viaCount = 0, .ratio = 0.0};
}

std::optional<ViaArrayFailureCriterion> ViaArrayFailureCriterion::parse(
    const std::string& s) {
  if (s == "open") return openCircuit();
  if (s == "weakest") return weakestLink();
  if (!s.empty() && s.back() == 'x') {
    const auto ratio = parseDoubleToken(
        std::string_view(s).substr(0, s.size() - 1));
    if (!ratio || !(*ratio > 1.0)) return std::nullopt;
    return resistanceRatio(*ratio);
  }
  const auto k = parseIntToken(s);
  if (!k || *k < 1 || *k > 1'000'000) return std::nullopt;
  return kthVia(static_cast<int>(*k));
}

std::string ViaArrayFailureCriterion::describe() const {
  switch (kind) {
    case Kind::kViaCount:
      return viaCount == 1 ? "weakest-link"
                           : ("via #" + std::to_string(viaCount));
    case Kind::kResistanceRatio: {
      std::ostringstream os;
      os << "R=" << ratio << "x";
      return os.str();
    }
    case Kind::kOpen:
      return "R=inf";
  }
  return "?";
}

double ViaArrayCharacterizationSpec::totalCurrent() const {
  return totalCurrentDensity * array.effectiveArea;
}

std::string ViaArrayCharacterizationSpec::cacheKey() const {
  std::ostringstream os;
  // max_digits10: every distinct double distinct in the key. At the old
  // precision(12), two specs differing only past the 12th significant
  // digit aliased to the same cache entry.
  os.precision(17);
  os << "n=" << array.n << ";A=" << array.effectiveArea
     << ";sp=" << array.minSpacing
     << ";pat=" << patternName(pattern) << ";w=" << wireWidth
     << ";m=" << margin << ";res=" << resolutionXy
     << ";j=" << totalCurrentDensity << ";Rarr=" << network.arrayResistanceOhms
     << ";sheet=" << network.sheetResistancePerSquare
     << ";Ea=" << em.activationEnergyEv << ";D0=" << em.diffusivityPrefactor
     << ";sD=" << em.deffSigma << ";rho=" << em.resistivityOhmM
     << ";B=" << em.bulkModulusPa << ";gam=" << em.surfaceEnergyJm2
     << ";Rf=" << em.meanFlawRadius << ";sRf=" << em.flawSigmaFraction
     << ";T=" << em.temperatureK << ";pkg=" << em.packageStressPa
     << ";cal=" << stressScale << "," << stressOffsetPa
     << ";tr=" << trials << ";seed=" << seed
     << ";stk=" << stack.metalLower << "," << stack.via << ","
     << stack.metalUpper
     // RNG scheme + key-format tag: trial t draws from the counter-based
     // stream Rng(seed, t), and doubles are keyed at max_digits10 (17).
     // Bumping either part invalidates caches written under the old
     // sequential shared-stream scheme or the old precision(12) key
     // format (which aliased near-identical specs). `parallelism`,
     // `policy`, and `checkpoint` are excluded: results are bit-identical
     // for every thread count and checkpoint cadence, and the policy
     // governs recovery, never the physics (runs with discarded/salvaged
     // trials are never persisted).
     << ";rng=ctr1;key=p17"
     // Level-1 network solver: the incremental shared-base/downdate path
     // ("inc1", DESIGN.md §5.9) and the legacy from-scratch LU path
     // ("exact") agree only to ~1e-12, so they key separately — a persisted
     // entry is only rehydrated by the solver that produced it. The
     // residual tolerance governs when the incremental path re-factors,
     // which perturbs results at the same order, so it is part of the key
     // on that path.
     << ";solve=" << (network.exactResolve ? "exact" : "inc1");
  if (!network.exactResolve)
    os << ";rtol=" << network.refreshResidualTolerance;
  // FEA preconditioner: like solve=, distinct preconditioners converge to
  // ulp-level different stress fields, so entries key separately.
  // (`primitiveStore` is excluded for the same reason `parallelism` is: a
  // warm primitive hit is bit-identical to the computed result.)
  os << ";fea=" << feaPreconditionerName(feaPreconditioner);
  return os.str();
}

std::string ViaArrayCharacterizationSpec::primitiveKey() const {
  std::ostringstream os;
  os.precision(17);  // same max_digits10 discipline as cacheKey()
  os << "n=" << array.n << ";A=" << array.effectiveArea
     << ";sp=" << array.minSpacing << ";pat=" << patternName(pattern)
     << ";w=" << wireWidth << ";m=" << margin << ";res=" << resolutionXy
     << ";stk=" << stack.metalLower << "," << stack.via << ","
     << stack.metalUpper << ";fea=" << feaPreconditionerName(feaPreconditioner);
  // The characterizer runs the solver at ThermoSolverOptions defaults; the
  // temperatures and CG tolerance are keyed by VALUE so a future change of
  // those defaults orphans old primitives instead of silently reusing them.
  const ThermoSolverOptions defaults;
  os << ";Ta=" << defaults.annealTemperatureC
     << ";Top=" << defaults.operatingTemperatureC
     << ";tol=" << defaults.cgRelativeTolerance << ";key=p17v1";
  return os.str();
}

namespace {
BuiltStructure buildFor(const ViaArrayCharacterizationSpec& spec) {
  return buildViaArrayStructure(ViaArrayStructureSpec{
      .viaArray = spec.array,
      .pattern = spec.pattern,
      .wireWidth = spec.wireWidth,
      .margin = spec.margin,
      .resolutionXy = spec.resolutionXy,
      .stack = spec.stack,
  });
}

// The healthy-array crowding network, stamped, solved, and (on the
// incremental path) factored exactly ONCE per characterization; every
// Monte Carlo trial copies this prototype and shares its immutable base
// (DESIGN.md §5.9).
ViaArrayNetwork buildBaseNetwork(const ViaArrayCharacterizationSpec& spec) {
  ViaArrayNetworkConfig netCfg = spec.network;
  netCfg.n = spec.array.n;
  netCfg.totalCurrentAmps = spec.totalCurrent();
  netCfg.policy = spec.policy;
  return ViaArrayNetwork(netCfg);
}
}  // namespace

ViaArrayCharacterizer::ViaArrayCharacterizer(
    const ViaArrayCharacterizationSpec& spec)
    : spec_(spec), built_(buildFor(spec)) {
  spec_.em.validate();
  VIADUCT_REQUIRE(spec_.trials >= 2);
  VIADUCT_REQUIRE(spec_.stressScale > 0.0);

  // Shared base network (also the reference of the R=ratio criterion —
  // the nominal resistance includes the crowding network's plate segments).
  baseNetwork_.emplace(buildBaseNetwork(spec_));
  nominalResistance_ = baseNetwork_->nominalResistance();

  VIADUCT_SPAN("viaarray.characterize_fea");
  // Stress primitive: consult the store before running FEA. A hit is the
  // exact vector a cold run would compute (round-trip-exact doubles), so a
  // warm sweep runs zero solves; an entry of the wrong shape is silent
  // corruption and degrades to recompute-and-rewrite, never an error.
  const std::string pkey = spec_.primitiveKey();
  if (spec_.primitiveStore) {
    if (auto cached = spec_.primitiveStore->load(pkey)) {
      if (cached->size() == built_.vias.size()) {
        VIADUCT_COUNTER_ADD("primitive_store.hits", 1);
        rawSigmaT_ = std::move(*cached);
      } else {
        VIADUCT_COUNTER_ADD("primitive_store.corrupt_entries", 1);
        VIADUCT_WARN << "stress-primitive entry has " << cached->size()
                     << " vias, structure has " << built_.vias.size()
                     << "; recomputing and rewriting";
      }
    } else {
      VIADUCT_COUNTER_ADD("primitive_store.misses", 1);
    }
  }
  int feaIterations = 0;
  if (rawSigmaT_.empty()) {
    ThreadPool pool(spec_.parallelism);
    ThermoSolverOptions feaOpts;
    feaOpts.pool = &pool;
    feaOpts.policy = spec_.policy;
    feaOpts.preconditioner = spec_.feaPreconditioner;
    ThermoSolver solver(built_.grid, feaOpts);
    VIADUCT_COUNTER_ADD("viaarray.fea_solves", 1);
    const CgResult res = solver.solve();
    if (!res.converged) {
      throw NumericalError(
          "FEA thermo-stress solve did not converge after policy retries");
    }
    feaIterations = res.iterations;
    rawSigmaT_ = perViaPeakStress(solver, built_);
    // Persist only results computed under the keyed preconditioner: the
    // policy ladder may have degraded mg -> ic0 mid-solve, and that result
    // must not be rehydrated under the mg key.
    if (spec_.primitiveStore &&
        solver.activePreconditioner() == spec_.feaPreconditioner) {
      spec_.primitiveStore->save(pkey, rawSigmaT_);
    }
  }
  sigmaT_.reserve(rawSigmaT_.size());
  for (double s : rawSigmaT_)
    sigmaT_.push_back(spec_.stressScale * s + spec_.stressOffsetPa);
  VIADUCT_INFO << "characterized " << spec_.array.n << "x" << spec_.array.n
               << " " << patternName(spec_.pattern) << " array: sigma_T in ["
               << *std::min_element(sigmaT_.begin(), sigmaT_.end()) / 1e6
               << ", "
               << *std::max_element(sigmaT_.begin(), sigmaT_.end()) / 1e6
               << "] MPa ("
               << (feaIterations > 0
                       ? std::to_string(feaIterations) + " CG iters"
                       : std::string("stress primitive reused"))
               << ")";
}

ViaArrayCharacterizer::ViaArrayCharacterizer(
    const ViaArrayCharacterizationSpec& spec,
    const CharacterizationData& data)
    : spec_(spec), built_(buildFor(spec)) {
  spec_.em.validate();
  VIADUCT_REQUIRE(spec_.trials >= 2);
  VIADUCT_REQUIRE(spec_.stressScale > 0.0);
  VIADUCT_REQUIRE_MSG(
      data.rawSigmaT.size() == built_.vias.size(),
      "cached stress vector does not match the via count");
  VIADUCT_REQUIRE_MSG(
      data.traces.size() == static_cast<std::size_t>(spec_.trials),
      "cached trace count does not match the spec's trial count");
  for (const auto& t : data.traces) {
    VIADUCT_REQUIRE_MSG(t.failureTimes.size() == built_.vias.size(),
                        "cached trace length does not match the via count");
  }
  baseNetwork_.emplace(buildBaseNetwork(spec_));
  nominalResistance_ = baseNetwork_->nominalResistance();
  rawSigmaT_ = data.rawSigmaT;
  for (double s : rawSigmaT_)
    sigmaT_.push_back(spec_.stressScale * s + spec_.stressOffsetPa);
  traces_ = data.traces;
  tracesReady_ = true;
}

CharacterizationData ViaArrayCharacterizer::exportData() {
  return CharacterizationData{.rawSigmaT = rawSigmaT_, .traces = traces()};
}

void ViaArrayCharacterizer::simulateTrial(Rng& rng,
                                          FailureTrace& trace) const {
  VIADUCT_SPAN("viaarray.mc_trial");
  VIADUCT_COUNTER_ADD("viaarray.trials", 1);
  trace.failureTimes.clear();
  trace.resistanceAfter.clear();
  const int count = spec_.array.viaCount();
  const double viaArea =
      spec_.array.effectiveArea / static_cast<double>(count);

  // Per-via nucleation budget at unit current density: K_i such that the
  // nucleation time at density j is K_i / j² (Eq. 3 scaling). Drawn before
  // the first network solve so the per-trial RNG stream is fully consumed
  // even when that solve fails (budget draws stay aligned across trials).
  std::vector<double> budget(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    budget[static_cast<std::size_t>(i)] =
        sampleTtf(rng, sigmaT_[static_cast<std::size_t>(i)],
                  /*currentDensity=*/1.0, spec_.em);
  }

  // Cheap copy-on-write handle onto the shared healthy base: the healthy
  // solve below is served from the base's memoized voltages, and each
  // failVia() is a rank-1 downdate instead of a fresh factorization.
  ViaArrayNetwork network = *baseNetwork_;

  std::vector<double> damage(static_cast<std::size_t>(count), 0.0);
  std::vector<double> currents = network.viaCurrents();

  trace.failureTimes.reserve(static_cast<std::size_t>(count));
  trace.resistanceAfter.reserve(static_cast<std::size_t>(count));

  double t = 0.0;
  for (int failed = 0; failed < count; ++failed) {
    // Find the next failing via: minimal remaining time.
    double best = std::numeric_limits<double>::infinity();
    int victim = -1;
    std::vector<double> rates(static_cast<std::size_t>(count), 0.0);
    for (int i = 0; i < count; ++i) {
      if (!network.viaAlive(i)) continue;
      const double j = std::abs(currents[static_cast<std::size_t>(i)]) / viaArea;
      const double k = budget[static_cast<std::size_t>(i)];
      double remaining;
      if (k <= 0.0) {
        remaining = 0.0;  // instant nucleation (sigma_C below sigma_T)
        rates[static_cast<std::size_t>(i)] = std::numeric_limits<double>::infinity();
      } else if (j <= 0.0) {
        remaining = std::numeric_limits<double>::infinity();
      } else {
        const double rate = j * j / k;
        rates[static_cast<std::size_t>(i)] = rate;
        remaining = (1.0 - damage[static_cast<std::size_t>(i)]) / rate;
      }
      if (remaining < best) {
        best = remaining;
        victim = i;
      }
    }
    VIADUCT_CHECK_MSG(victim >= 0 && std::isfinite(best),
                      "no failing via found (zero currents everywhere?)");

    // Advance damage on survivors and fail the victim.
    t += best;
    for (int i = 0; i < count; ++i) {
      if (!network.viaAlive(i) || i == victim) continue;
      const double r = rates[static_cast<std::size_t>(i)];
      if (std::isfinite(r)) damage[static_cast<std::size_t>(i)] += r * best;
    }
    network.failVia(victim);
    VIADUCT_COUNTER_ADD("viaarray.via_failures", 1);
    trace.failureTimes.push_back(t);
    if (network.aliveCount() > 0) {
      trace.resistanceAfter.push_back(network.effectiveResistance());
      VIADUCT_COUNTER_ADD("viaarray.network_resolves", 1);
      currents = network.viaCurrents();
    } else {
      trace.resistanceAfter.push_back(std::numeric_limits<double>::infinity());
    }
  }
}

const std::vector<FailureTrace>& ViaArrayCharacterizer::traces() {
  if (!tracesReady_) {
    traces_.assign(static_cast<std::size_t>(spec_.trials), FailureTrace{});
    enum class TrialStatus : unsigned char { kKept, kDiscarded, kSalvaged };
    std::vector<TrialStatus> status(static_cast<std::size_t>(spec_.trials),
                                    TrialStatus::kKept);

    // Checkpoint/resume: restore completed trials (trace payload AND
    // discard/salvage status), then run only what is missing. Snapshots
    // are keyed on cacheKey(), so any physics change rejects them.
    checkpoint::TrialRecorder recorder(spec_.checkpoint, spec_.cacheKey(),
                                       spec_.trials);
    std::vector<unsigned char> done(static_cast<std::size_t>(spec_.trials), 0);
    const std::size_t viaCount = built_.vias.size();
    for (const auto& [trial, record] : recorder.restore()) {
      const auto idx = static_cast<std::size_t>(trial);
      const std::size_t n = record.primary.size();
      const bool shapeOk =
          n == record.secondary.size() &&
          (record.outcome == checkpoint::TrialOutcome::kKept
               ? n == viaCount
               : record.outcome == checkpoint::TrialOutcome::kDiscarded
                     ? n == 0
                     : n <= viaCount);
      if (!shapeOk) {
        VIADUCT_WARN << "checkpoint: trial " << trial
                     << " has an unexpected trace shape; re-running it";
        continue;
      }
      traces_[idx].failureTimes = record.primary;
      traces_[idx].resistanceAfter = record.secondary;
      status[idx] =
          record.outcome == checkpoint::TrialOutcome::kDiscarded
              ? TrialStatus::kDiscarded
              : record.outcome == checkpoint::TrialOutcome::kSalvaged
                    ? TrialStatus::kSalvaged
                    : TrialStatus::kKept;
      done[idx] = 1;
      ++resumedTrials_;
    }

    ThreadPool pool(spec_.parallelism);
    ProgressReporter::Options progressOptions;
    if (recorder.enabled())
      progressOptions.checkpointAgeSeconds = [&recorder] {
        return recorder.secondsSinceLastWrite();
      };
    ProgressReporter progress("viaarray", spec_.trials,
                              std::move(progressOptions));
    progress.seedCompleted(resumedTrials_);
    // Each trial draws from its own counter-based stream Rng(seed, t), so
    // the trial→sample mapping never depends on scheduling and the traces
    // are bit-identical for any thread count (and for any resumed subset).
    // The fault ScopedStream pins armed injection sites to the same
    // per-trial stream, making the discard/salvage pattern equally
    // scheduling-independent.
    pool.parallelFor(0, spec_.trials, 1, [&](std::int64_t trial) {
      const auto idx = static_cast<std::size_t>(trial);
      if (done[idx]) return;  // restored from the checkpoint
      const fault::ScopedStream scope(static_cast<std::uint64_t>(trial));
      Rng rng(spec_.seed, static_cast<std::uint64_t>(trial));
      try {
        simulateTrial(rng, traces_[idx]);
      } catch (const NumericalError&) {
        if (!spec_.policy.enabled ||
            spec_.policy.trialPolicy ==
                fault::FailurePolicy::TrialPolicy::kAbort) {
          throw;
        }
        if (spec_.policy.trialPolicy ==
            fault::FailurePolicy::TrialPolicy::kSalvage) {
          // Keep the via failures recorded before the solve failed: a
          // truncated but valid prefix of the trace.
          status[idx] = TrialStatus::kSalvaged;
        } else {
          traces_[idx] = FailureTrace{};
          status[idx] = TrialStatus::kDiscarded;
        }
      }
      recorder.record(
          {trial,
           status[idx] == TrialStatus::kDiscarded
               ? checkpoint::TrialOutcome::kDiscarded
               : status[idx] == TrialStatus::kSalvaged
                     ? checkpoint::TrialOutcome::kSalvaged
                     : checkpoint::TrialOutcome::kKept,
           traces_[idx].failureTimes, traces_[idx].resistanceAfter});
      progress.trialDone(status[idx] == TrialStatus::kDiscarded ? 1 : 0,
                         status[idx] == TrialStatus::kSalvaged ? 1 : 0);
    });
    recorder.finalize();
    for (const TrialStatus s : status) {
      if (s == TrialStatus::kDiscarded) ++discardedTrials_;
      if (s == TrialStatus::kSalvaged) ++salvagedTrials_;
    }
    if (discardedTrials_ > 0) {
      VIADUCT_COUNTER_ADD("viaarray.trials_discarded", discardedTrials_);
    }
    if (salvagedTrials_ > 0) {
      VIADUCT_COUNTER_ADD("viaarray.trials_salvaged", salvagedTrials_);
    }
    if (discardedTrials_ > 0 || salvagedTrials_ > 0) {
      VIADUCT_INFO << "via-array MC: "
                   << spec_.trials - discardedTrials_ - salvagedTrials_ << "/"
                   << spec_.trials << " trials clean (" << discardedTrials_
                   << " discarded, " << salvagedTrials_ << " salvaged)";
    }
    tracesReady_ = true;
  }
  return traces_;
}

std::vector<double> ViaArrayCharacterizer::ttfSamples(
    const ViaArrayFailureCriterion& criterion) {
  const auto& all = traces();
  const int count = spec_.array.viaCount();
  std::vector<double> samples;
  samples.reserve(all.size());
  for (const auto& trace : all) {
    // Discarded trials leave empty traces; salvaged ones leave a truncated
    // prefix usable only when the criterion fired within it.
    if (trace.failureTimes.empty()) continue;
    const bool complete =
        trace.failureTimes.size() == static_cast<std::size_t>(count);
    double ttf = 0.0;
    bool observed = true;
    switch (criterion.kind) {
      case ViaArrayFailureCriterion::Kind::kViaCount: {
        VIADUCT_REQUIRE_MSG(criterion.viaCount >= 1 &&
                                criterion.viaCount <= count,
                            "criterion via count out of range");
        const auto k = static_cast<std::size_t>(criterion.viaCount);
        if (trace.failureTimes.size() < k) {
          observed = false;
          break;
        }
        ttf = trace.failureTimes[k - 1];
        break;
      }
      case ViaArrayFailureCriterion::Kind::kResistanceRatio: {
        const double limit = criterion.ratio * nominalResistance_;
        observed = false;
        for (std::size_t m = 0; m < trace.resistanceAfter.size(); ++m) {
          if (trace.resistanceAfter[m] >= limit) {
            ttf = trace.failureTimes[m];
            observed = true;
            break;
          }
        }
        if (!observed && complete) {
          ttf = trace.failureTimes.back();  // fallback: open circuit
          observed = true;
        }
        break;
      }
      case ViaArrayFailureCriterion::Kind::kOpen:
        if (!complete) {
          observed = false;
          break;
        }
        ttf = trace.failureTimes.back();
        break;
    }
    if (observed) samples.push_back(ttf);
  }
  if (samples.empty()) {
    throw NumericalError("no usable TTF samples under criterion " +
                         criterion.describe() +
                         " (every trial discarded or censored early)");
  }
  return samples;
}

EmpiricalCdf ViaArrayCharacterizer::ttfCdf(
    const ViaArrayFailureCriterion& criterion) {
  return EmpiricalCdf(ttfSamples(criterion));
}

Lognormal ViaArrayCharacterizer::ttfLognormal(
    const ViaArrayFailureCriterion& criterion) {
  std::vector<double> samples = ttfSamples(criterion);
  std::vector<double> positive;
  positive.reserve(samples.size());
  for (double s : samples)
    if (s > 0.0) positive.push_back(s);
  VIADUCT_CHECK_MSG(positive.size() * 2 > samples.size(),
                    "more than half the TTF samples are zero; the stress "
                    "calibration is unphysical");
  if (positive.size() < samples.size()) {
    VIADUCT_WARN << (samples.size() - positive.size()) << "/" << samples.size()
                 << " trials nucleated instantly; lognormal fit uses the "
                    "positive samples";
  }
  return Lognormal::fitMle(positive);
}

ViaArrayLibrary::ViaArrayLibrary(std::shared_ptr<CharacterizationStore> store)
    : store_(std::move(store)) {}

std::size_t ViaArrayLibrary::size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

std::shared_ptr<ViaArrayCharacterizer> ViaArrayLibrary::get(
    const ViaArrayCharacterizationSpec& spec, GetInfo* info) {
  const std::string key = spec.cacheKey();

  std::shared_future<Shared> theirs;
  std::promise<Shared> mine;
  {
    std::unique_lock lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      VIADUCT_COUNTER_ADD("char_cache.memory_hit", 1);
      if (info) info->memoryHit = true;
      return it->second;
    }
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      theirs = it->second;
    } else {
      inflight_.emplace(key, mine.get_future().share());
    }
  }

  if (theirs.valid()) {
    // Another thread is characterizing this exact key right now: wait on
    // its future instead of duplicating an FEA solve + Monte Carlo. A
    // failure over there rethrows here too.
    VIADUCT_COUNTER_ADD("char_cache.inflight_join", 1);
    if (info) info->joinedInFlight = true;
    return theirs.get();
  }

  try {
    Shared created = compute(spec, key);
    {
      std::lock_guard lock(mutex_);
      cache_.emplace(key, created);
      inflight_.erase(key);
    }
    mine.set_value(created);
    return created;
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      inflight_.erase(key);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
}

ViaArrayLibrary::Shared ViaArrayLibrary::compute(
    const ViaArrayCharacterizationSpec& spec, const std::string& key) {
  if (store_) {
    if (const auto data = store_->load(key)) {
      VIADUCT_COUNTER_ADD("char_cache.store_hit", 1);
      try {
        return std::make_shared<ViaArrayCharacterizer>(spec, *data);
      } catch (const PreconditionError& e) {
        // The entry parsed but its shape contradicts the spec: silent
        // corruption. Recompute-and-rewrite (below) under the policy;
        // otherwise surface the corruption to the caller.
        VIADUCT_COUNTER_ADD("char_cache.corrupt_entries", 1);
        if (!spec.policy.enabled || !spec.policy.recomputeOnCacheCorruption) {
          throw;
        }
        VIADUCT_WARN << "characterization cache entry is corrupt (" << e.what()
                     << "); recomputing and rewriting";
      }
    }
  }

  VIADUCT_COUNTER_ADD("char_cache.miss", 1);
  auto created = std::make_shared<ViaArrayCharacterizer>(spec);
  // Force the Monte Carlo before publication: every access through the
  // library after this point is read-only, so concurrent requests may
  // share the characterizer (and its base-factor prototype) freely.
  created->traces();
  if (store_) {
    if (created->discardedTrials() == 0 && created->salvagedTrials() == 0) {
      store_->save(key, created->exportData());
    } else {
      // Never persist a run with policy-altered traces: the cache key has
      // no policy component, so a later policy-free run must not rehydrate
      // censored data.
      VIADUCT_INFO << "characterization not persisted: "
                   << created->discardedTrials() << " discarded / "
                   << created->salvagedTrials() << " salvaged trial(s)";
    }
  }
  return created;
}

}  // namespace viaduct
