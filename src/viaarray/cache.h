// On-disk persistence for via-array characterizations.
//
// Characterization is the expensive step (FEA + 500-trial Monte Carlo) and
// is a per-technology one-time cost (§5.1). This store saves the raw
// per-via stress and the full failure traces keyed by the
// ViaArrayCharacterizationSpec cache key, so separate processes (the bench
// binaries, user tools) share work across runs — the role of a
// precharacterized technology library.
//
// Format: a line-oriented text file, one `entry` block per configuration.
// Keys embed every physical parameter, so stale entries are simply never
// matched after a parameter change.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "viaarray/characterize.h"

namespace viaduct {

/// The persisted payload of one characterization.
struct CharacterizationData {
  std::vector<double> rawSigmaT;      // uncalibrated FEA stress per via [Pa]
  std::vector<FailureTrace> traces;   // one per Monte Carlo trial
};

class CharacterizationStore {
 public:
  /// Opens (or lazily creates) the store at `path`.
  explicit CharacterizationStore(std::string path);

  /// Loads the entry for `key`; std::nullopt if absent or malformed (a
  /// malformed file is treated as a cache miss, never an error).
  /// Thread-safe: loads and saves through one store object serialize on an
  /// internal mutex, so one instance may be shared across request workers
  /// (the save path is a read-modify-rewrite of the whole file).
  std::optional<CharacterizationData> load(const std::string& key) const;

  /// Appends (or replaces) the entry for `key`.
  void save(const std::string& key, const CharacterizationData& data);

  /// Number of entries currently stored.
  std::size_t entryCount() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
};

}  // namespace viaduct
