// Via-array TTF characterization (Algorithm 1, level 1).
//
// For one via-array configuration (size, pattern, wire width), this:
//   1. runs the FEA thermomechanical solve once and extracts the per-via
//      peak stress σ_T (§3.2);
//   2. Monte Carlo simulates sequential via failures with current
//      redistribution through the crowding network (§4): each via draws a
//      lognormal nucleation-time budget from the Korhonen model, consumes
//      it at a rate ∝ j² (Eq. 3), and failures re-solve the network;
//   3. evaluates the TTF distribution under any failure criterion (k-th
//      via, resistance ratio, or open circuit) from the recorded failure
//      traces, and fits the two-parameter lognormal that the power-grid
//      level samples (§5.1).
//
// Characterization is a per-technology one-time step (like standard-cell
// characterization); ViaArrayLibrary memoizes it per configuration.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "common/lognormal.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/thread_pool.h"
#include "em/em_params.h"
#include "fault/policy.h"
#include "fea/thermo_solver.h"
#include "structures/cudd_builder.h"
#include "viaarray/network.h"

namespace viaduct {

class StressPrimitiveStore;  // viaarray/primitive_store.h

/// Default affine calibration of raw FEA hydrostatic stress onto the
/// paper's reported 180–280 MPa window (single global map, applied to all
/// configurations so that all *differences* are preserved; see DESIGN.md §6).
inline constexpr double kDefaultStressScale = 0.80;
inline constexpr double kDefaultStressOffsetPa = 0.0;

/// When a via array is deemed failed (§4/§5.1).
struct ViaArrayFailureCriterion {
  enum class Kind { kViaCount, kResistanceRatio, kOpen };
  Kind kind = Kind::kOpen;
  int viaCount = 1;      // for kViaCount
  double ratio = 2.0;    // for kResistanceRatio: R >= ratio * nominal

  static ViaArrayFailureCriterion weakestLink();
  static ViaArrayFailureCriterion kthVia(int k);
  static ViaArrayFailureCriterion resistanceRatio(double ratio);
  static ViaArrayFailureCriterion openCircuit();

  /// Parses the CLI/serving spelling: "open", "weakest", "<k>" (k-th via),
  /// or "<r>x" (resistance ratio, e.g. "2x"). Locale-independent;
  /// std::nullopt on anything else (including k < 1 or r <= 1).
  static std::optional<ViaArrayFailureCriterion> parse(const std::string& s);

  std::string describe() const;
};

struct ViaArrayCharacterizationSpec {
  ViaArraySpec array;
  IntersectionPattern pattern = IntersectionPattern::kPlus;
  double wireWidth = 2.0e-6;
  double margin = 1.5e-6;
  /// One lateral resolution for ALL configurations being compared (peak
  /// stress sampling is resolution dependent). 0.125 µm resolves 8×8.
  double resolutionXy = 0.125e-6;
  StackSpec stack;

  /// Total current density over the effective via area [A/m²]; the paper
  /// stresses the Figure 8 array at 1e10 A/m².
  double totalCurrentDensity = 1.0e10;

  /// Crowding-network electrical config (totalCurrentAmps is derived, see
  /// below). `network.exactResolve` selects the legacy from-scratch LU
  /// solver instead of the incremental shared-base/downdate path for A/B
  /// verification; the two key separately in cacheKey().
  ViaArrayNetworkConfig network;
  EmParameters em;

  double stressScale = kDefaultStressScale;
  double stressOffsetPa = kDefaultStressOffsetPa;

  /// Preconditioner for the FEA stress solve. Multigrid is the default —
  /// it solves fig7-sized grids several times faster than IC(0)-CG
  /// (DESIGN.md §5.12) — with "ic0" and the seed's "bj" selectable for A/B
  /// verification. Distinct preconditioners converge to ulp-level
  /// *different* stress fields at the same tolerance, so this IS part of
  /// cacheKey() and primitiveKey(), like the level-1 `solve=` tag.
  FeaPreconditionerKind feaPreconditioner = FeaPreconditionerKind::kMultigrid;

  /// Optional on-disk store of FEA stress primitives, consulted before
  /// running the solve (viaarray/primitive_store.h): a warm store
  /// characterizes with ZERO FEA solves, bit-identically to a cold run.
  /// Like `parallelism`, deliberately NOT part of cacheKey() or
  /// primitiveKey() — where the primitive came from never changes it.
  std::shared_ptr<StressPrimitiveStore> primitiveStore;

  int trials = 500;
  std::uint64_t seed = 12345;

  /// Worker threads for the FEA solve and the Monte Carlo trials. Trial t
  /// draws from the counter-based stream Rng(seed, t) and the FEA kernels
  /// chunk with fixed grains, so results are bit-identical for every
  /// thread count — which is why this is deliberately NOT part of
  /// cacheKey().
  Parallelism parallelism;

  /// Failure policy: FEA retry ladder, per-trial salvage/discard semantics
  /// in the failure Monte Carlo, and cache-corruption recovery in
  /// ViaArrayLibrary. Like `parallelism`, deliberately NOT part of
  /// cacheKey() — the policy only governs recovery, never the physics.
  fault::FailurePolicy policy;

  /// Crash-safe periodic snapshots of completed Monte Carlo trials +
  /// resume (DESIGN.md §5.8). Snapshots are keyed on cacheKey(), so a
  /// stale snapshot is rejected, never silently resumed. Like
  /// `parallelism`, deliberately NOT part of cacheKey() — a resumed run is
  /// bit-identical to an uninterrupted one.
  checkpoint::Options checkpoint;

  /// Total array current [A] implied by the density and effective area.
  double totalCurrent() const;

  /// Stable cache key over every physical field.
  std::string cacheKey() const;

  /// Stable key over exactly the fields the FEA stress primitive depends
  /// on: geometry, stack, mesh resolution, and the solver settings
  /// (preconditioner, temperatures, CG tolerance). Same p17 double
  /// discipline as cacheKey(). Changing the EM model, trial count, or seed
  /// leaves this key — and the cached primitive — untouched.
  std::string primitiveKey() const;
};

/// One Monte Carlo trial's full failure trace.
struct FailureTrace {
  /// failureTimes[m] = time [s] of the (m+1)-th via failure.
  std::vector<double> failureTimes;
  /// resistanceAfter[m] = array resistance [Ω] after that failure
  /// (infinity for the last).
  std::vector<double> resistanceAfter;
};

struct CharacterizationData;  // viaarray/cache.h

class ViaArrayCharacterizer {
 public:
  explicit ViaArrayCharacterizer(const ViaArrayCharacterizationSpec& spec);

  /// Rehydrates from persisted data (viaarray/cache.h), skipping the FEA
  /// solve and the Monte Carlo. The data must match the spec (via count
  /// and trial count are validated).
  ViaArrayCharacterizer(const ViaArrayCharacterizationSpec& spec,
                        const CharacterizationData& data);

  /// Exports the persistable payload (forces the Monte Carlo to run).
  CharacterizationData exportData();

  const ViaArrayCharacterizationSpec& spec() const { return spec_; }

  /// Calibrated per-via σ_T [Pa], in BuiltStructure::vias order.
  const std::vector<double>& sigmaT() const { return sigmaT_; }

  /// Raw (uncalibrated) FEA per-via peak stress [Pa].
  const std::vector<double>& rawSigmaT() const { return rawSigmaT_; }

  const BuiltStructure& structure() const { return built_; }

  /// Runs (or returns memoized) Monte Carlo traces. A trial whose network
  /// solve fails past the policy is left as an empty trace (kDiscard) or a
  /// partial one (kSalvage); see the accounting accessors below.
  const std::vector<FailureTrace>& traces();

  /// Failure-policy accounting over the Monte Carlo (0 until traces() ran).
  /// Counts include trials restored from a checkpoint snapshot.
  int discardedTrials() const { return discardedTrials_; }
  int salvagedTrials() const { return salvagedTrials_; }

  /// Trials restored from the checkpoint snapshot instead of re-run
  /// (0 until traces() ran, and always 0 without spec.checkpoint.resume).
  int resumedTrials() const { return resumedTrials_; }

  /// TTF samples [s] under a criterion — one per trial that observed the
  /// criterion (discarded trials and salvaged trials that ended before the
  /// criterion are excluded).
  std::vector<double> ttfSamples(const ViaArrayFailureCriterion& criterion);

  /// Empirical CDF of the TTF under a criterion.
  EmpiricalCdf ttfCdf(const ViaArrayFailureCriterion& criterion);

  /// Two-parameter lognormal fit of the TTF (log-space MLE over nonzero
  /// samples; zero samples are counted and must be rare).
  Lognormal ttfLognormal(const ViaArrayFailureCriterion& criterion);

  /// Healthy-array network resistance (reference for ratio criteria) [Ω].
  double nominalResistance() const { return nominalResistance_; }

 private:
  /// Fills `trace` progressively (cleared first), so a trial aborted by a
  /// solver failure leaves every via failure recorded so far behind for
  /// salvage accounting.
  void simulateTrial(Rng& rng, FailureTrace& trace) const;

  ViaArrayCharacterizationSpec spec_;
  BuiltStructure built_;
  /// Healthy-array network prototype: stamped, solved, and (incremental
  /// path) factored once; each Monte Carlo trial copies it and shares the
  /// immutable base state (DESIGN.md §5.9). Never mutated after
  /// construction, so concurrent per-trial copies are safe.
  std::optional<ViaArrayNetwork> baseNetwork_;
  double nominalResistance_ = 0.0;
  std::vector<double> rawSigmaT_;
  std::vector<double> sigmaT_;
  std::vector<FailureTrace> traces_;
  bool tracesReady_ = false;
  int discardedTrials_ = 0;
  int salvagedTrials_ = 0;
  int resumedTrials_ = 0;
};

/// Memoizing library of characterizers keyed by spec.cacheKey(). This is
/// the object the power-grid analysis consults; it plays the role of the
/// precharacterized technology library of §5.1.
class CharacterizationStore;  // viaarray/cache.h

class ViaArrayLibrary {
 public:
  ViaArrayLibrary() = default;

  /// A library backed by an on-disk store: misses are computed, persisted,
  /// and shared across processes (see viaarray/cache.h).
  explicit ViaArrayLibrary(std::shared_ptr<CharacterizationStore> store);

  /// How a get() was satisfied (serving-layer accounting, DESIGN.md §5.13).
  struct GetInfo {
    /// Served from the in-memory map with no work at all.
    bool memoryHit = false;
    /// Another thread was already characterizing the same key; this call
    /// waited on its future instead of recomputing.
    bool joinedInFlight = false;
  };

  /// Returns a shared characterizer for the spec (creating it — including
  /// the FEA solve and the Monte Carlo — on first use, or rehydrating from
  /// the store). Thread-safe: concurrent calls for the same key are
  /// deduplicated in flight (the second caller blocks on the first's
  /// future; counter `char_cache.inflight_join`), and the published
  /// characterizer has its traces forced so every later access is
  /// read-only. A failed computation rethrows on every caller waiting on
  /// that key.
  std::shared_ptr<ViaArrayCharacterizer> get(
      const ViaArrayCharacterizationSpec& spec, GetInfo* info = nullptr);

  std::size_t size() const;

 private:
  using Shared = std::shared_ptr<ViaArrayCharacterizer>;

  /// The store-load / compute / store-save miss path (no locks held).
  Shared compute(const ViaArrayCharacterizationSpec& spec,
                 const std::string& key);

  mutable std::mutex mutex_;
  std::map<std::string, Shared> cache_;
  /// In-flight computations by cache key; erased once published/failed.
  std::map<std::string, std::shared_future<Shared>> inflight_;
  std::shared_ptr<CharacterizationStore> store_;
};

}  // namespace viaduct
