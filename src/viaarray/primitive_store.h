// Versioned on-disk store of FEA stress primitives.
//
// The characterization cache (viaarray/cache.h) keys on EVERY physical
// field of the spec, so changing the EM parameters, trial count, or seed
// re-runs the whole characterization — including the thermomechanical FEA
// solve, whose result depends on none of those. This store caches that
// solve's primitive alone: the raw per-via peak stress vector, keyed by
// ViaArrayCharacterizationSpec::primitiveKey() (geometry, stack, mesh
// resolution, solver settings — the p17 key discipline of cacheKey()).
// A warm store makes a characterization sweep run ZERO FEA solves.
//
// Format (line-oriented text):
//   viaduct-stress-primitives v1        <- magic + store-format version
//   entry <primitiveKey>
//   sigma <doubles at max_digits10>
//
// The version tag is part of the magic line: a reader only accepts files
// written under the exact format version it understands, so a format bump
// invalidates every old file wholesale (load degrades to a miss and the
// next save rewrites the file under the new version). Corrupt or truncated
// files are likewise misses, never errors.
//
// Writes are crash-safe: the whole file is rewritten to `<path>.tmp`,
// fsync'd, and atomically renamed over `<path>` (then the directory is
// fsync'd so the rename itself survives a crash). Readers open the path
// fresh on every load, so a concurrent reader sees either the complete old
// file or the complete new one — never a torn write.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace viaduct {

class StressPrimitiveStore {
 public:
  /// Opens (or lazily creates) the store at `path`.
  explicit StressPrimitiveStore(std::string path);

  /// Loads the raw per-via stress vector for `key`; std::nullopt if the
  /// file is absent, has a different format version, is malformed, or has
  /// no such entry — every failure mode is a miss, never an exception.
  std::optional<std::vector<double>> load(const std::string& key) const;

  /// Inserts (or replaces) the entry for `key` with a crash-safe atomic
  /// rewrite of the whole file. Thread-safe: in-process saves serialize on
  /// an internal mutex so one store may be shared across request workers;
  /// loads stay lock-free (they re-open the file and only ever see a
  /// complete pre- or post-rename image).
  void save(const std::string& key, const std::vector<double>& sigma);

  /// Number of well-formed entries currently stored (0 for a missing or
  /// unreadable file).
  std::size_t entryCount() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
};

}  // namespace viaduct
