// Electrical model of an n×n via array with current crowding.
//
// The array is discretized as two n×n plates of nodes (upper metal above
// each via, lower metal below each via) connected by the via resistances.
// Plate nodes are linked laterally by sheet-resistance segments. Current
// enters from a feed rail at the upper wire's −y edge and leaves through a
// drain rail at the lower wire's +x edge — the "turn the corner" flow of a
// power-grid intersection, which produces the edge/corner current crowding
// reported for multi-via structures [Li et al., SISPAD'12].
//
// Failing a via removes its branch; the remaining vias' currents
// redistribute (and increase), which is what couples redundancy to EM in
// Algorithm 1.
#pragma once

#include <vector>

#include "numerics/dense.h"

namespace viaduct {

struct ViaArrayNetworkConfig {
  int n = 4;
  /// Nominal resistance of the WHOLE healthy array [Ω]; one via is n²×this.
  double arrayResistanceOhms = 0.4;
  /// Plate sheet resistance [Ω/sq] for the lateral segments.
  double sheetResistancePerSquare = 0.02;
  /// Total current pushed through the array [A].
  double totalCurrentAmps = 0.01;
};

class ViaArrayNetwork {
 public:
  explicit ViaArrayNetwork(const ViaArrayNetworkConfig& config);

  int viaCount() const { return config_.n * config_.n; }
  int aliveCount() const { return aliveCount_; }
  bool viaAlive(int via) const;

  /// Marks a via failed (idempotent-checked: failing twice throws).
  void failVia(int via);

  /// Restores all vias.
  void reset();

  /// Per-via currents [A] under the configured total current; failed vias
  /// carry 0. Throws NumericalError if no conducting path remains.
  std::vector<double> viaCurrents() const;

  /// Effective feed-to-drain resistance of the array network [Ω].
  /// Infinite (throws NumericalError) once all vias have failed.
  double effectiveResistance() const;

  /// Healthy-array effective resistance (cached at construction).
  double nominalResistance() const { return nominalResistance_; }

  /// Eq. (5): idealized fractional resistance increase when nF of n² equal
  /// parallel vias fail: ΔR/R = nF/(n² − nF). Static, for analysis/tests.
  static double idealResistanceIncrease(int totalVias, int failedVias);

  /// Via index helpers (row-major: via = row*n + col).
  int viaIndex(int row, int col) const;

 private:
  void solveNetwork(std::vector<double>& nodeVoltages) const;

  ViaArrayNetworkConfig config_;
  std::vector<bool> alive_;
  int aliveCount_ = 0;
  double nominalResistance_ = 0.0;
};

}  // namespace viaduct
