// Electrical model of an n×n via array with current crowding.
//
// The array is discretized as two n×n plates of nodes (upper metal above
// each via, lower metal below each via) connected by the via resistances.
// Plate nodes are linked laterally by sheet-resistance segments. Current
// enters from a feed rail at the upper wire's −y edge and leaves through a
// drain rail at the lower wire's +x edge — the "turn the corner" flow of a
// power-grid intersection, which produces the edge/corner current crowding
// reported for multi-via structures [Li et al., SISPAD'12].
//
// Failing a via removes its branch; the remaining vias' currents
// redistribute (and increase), which is what couples redundancy to EM in
// Algorithm 1.
//
// Solver architecture (DESIGN.md §5.9): the healthy-array system is
// stamped and Cholesky-factored ONCE per configuration into an immutable
// shared base. Copy-constructing a network shares that base, so a Monte
// Carlo trial's handle is cheap; the first failVia() clones the base
// factor (copy-on-write) and every failure after that is a rank-1
// Sherman–Morrison downdate of the clone — O(N²) per step instead of the
// O(N³) from-scratch factorization, N = 2n²+1. The solved node-voltage
// vector is memoized per failure state, so viaCurrents() and
// effectiveResistance() share a single solve. Every incremental solve is
// residual-guarded: when accumulated downdate roundoff (or a rejected
// downdate, or an injected "network.resolve" fault under a permissive
// FailurePolicy) breaks the tolerance, the current state is re-stamped and
// factored from scratch instead of aborting the trial. The legacy
// from-scratch dense LU path stays selectable via
// ViaArrayNetworkConfig::exactResolve for A/B verification.
#pragma once

#include <memory>
#include <vector>

#include "fault/policy.h"
#include "numerics/dense.h"
#include "numerics/dense_cholesky.h"

namespace viaduct {

struct ViaArrayNetworkConfig {
  int n = 4;
  /// Nominal resistance of the WHOLE healthy array [Ω]; one via is n²×this.
  double arrayResistanceOhms = 0.4;
  /// Plate sheet resistance [Ω/sq] for the lateral segments.
  double sheetResistancePerSquare = 0.02;
  /// Total current pushed through the array [A].
  double totalCurrentAmps = 0.01;

  /// Legacy A/B path: re-stamp and LU-solve the full system from scratch
  /// on every query instead of downdating the shared base factor. Slower
  /// by ~N/10 per failure step; results agree with the incremental path to
  /// ≤1e-10 (enforced by viaarray_network_incremental_test).
  bool exactResolve = false;

  /// Incremental path only: normalized KCL backward error
  /// ‖Gv − b‖ / ‖ |G||v| + |b| ‖ above which the downdated factor is
  /// discarded and re-factored from scratch.
  double refreshResidualTolerance = 1e-10;

  /// Recovery behavior of the incremental path: with the policy enabled
  /// and `refactorOnWoodburyFailure`, an injected "network.resolve" fault
  /// degrades to a fresh factorization instead of failing the trial.
  /// Rejected downdates and residual breaches always refresh (they are
  /// accuracy guards, not failures, and stay deterministic across policy
  /// toggles).
  fault::FailurePolicy policy;
};

class ViaArrayNetwork {
 public:
  explicit ViaArrayNetwork(const ViaArrayNetworkConfig& config);

  /// Copies share the immutable healthy-array base (matrix, factor, and
  /// solved voltages); per-instance failure state is independent. Copying
  /// a healthy network is O(n²) bookkeeping — the intended Monte Carlo
  /// pattern is one healthy prototype copied per trial. Copying a network
  /// with failures deep-copies its downdated factor.
  ViaArrayNetwork(const ViaArrayNetwork&) = default;
  ViaArrayNetwork& operator=(const ViaArrayNetwork&) = default;

  int viaCount() const { return config_.n * config_.n; }
  int aliveCount() const { return aliveCount_; }
  bool viaAlive(int via) const;

  /// Marks a via failed (idempotent-checked: failing twice throws). On the
  /// incremental path this downdates the copy-on-write factor in O(N²).
  void failVia(int via);

  /// Restores all vias (drops back to the shared base factor).
  void reset();

  /// Per-via currents [A] under the configured total current; failed vias
  /// carry 0. Throws NumericalError if no conducting path remains.
  std::vector<double> viaCurrents() const;

  /// Effective feed-to-drain resistance of the array network [Ω].
  /// Infinite (throws NumericalError) once all vias have failed.
  double effectiveResistance() const;

  /// Healthy-array effective resistance (cached at construction).
  double nominalResistance() const { return base_->nominalResistance; }

  /// Eq. (5): idealized fractional resistance increase when nF of n² equal
  /// parallel vias fail: ΔR/R = nF/(n² − nF). Static, for analysis/tests.
  static double idealResistanceIncrease(int totalVias, int failedVias);

  /// Via index helpers (row-major: via = row*n + col).
  int viaIndex(int row, int col) const;

 private:
  /// Immutable healthy-array state shared by every copy of a network.
  struct Base {
    DenseMatrix healthyG;                // stamped healthy system
    std::vector<double> rhs;             // current injection at the feed
    DenseCholeskyFactor healthyFactor;   // empty when exactResolve
    std::vector<double> healthyVoltages;
    double nominalResistance = 0.0;
    double gVia = 0.0;
  };

  /// Stamps the conductance system of the CURRENT alive state into `g`
  /// (resized/cleared first).
  void stampMatrix(DenseMatrix& g) const;

  /// Memoized node voltages of the current failure state; one solve per
  /// state regardless of how many viaCurrents()/effectiveResistance()
  /// queries follow. NOT thread-safe: a network instance belongs to one
  /// trial/thread (copies are independent).
  const std::vector<double>& nodeVoltages() const;

  /// From-scratch LU resolve of the current state (legacy/exact path).
  void solveExact(std::vector<double>& v) const;

  /// Incremental resolve: shared base factor for the healthy state, the
  /// downdated copy-on-write factor otherwise, with the residual-guarded
  /// refactor fallback.
  void solveIncremental(std::vector<double>& v) const;

  /// KCL residual ‖Gv − b‖₂/‖b‖₂ of the current topology, computed from
  /// the stamped branches in O(n²) (never forms the dense matrix).
  double topologyResidual(const std::vector<double>& v) const;

  ViaArrayNetworkConfig config_;
  std::shared_ptr<const Base> base_;
  std::vector<bool> alive_;
  int aliveCount_ = 0;

  // Copy-on-write incremental state (meaningful only when !exactResolve).
  mutable DenseCholeskyFactor factor_;  // clone of base factor + downdates
  bool ownFactor_ = false;
  mutable bool factorStale_ = false;  // rejected downdate: refresh on solve

  // Per-failure-state solve memo.
  mutable std::vector<double> voltages_;
  mutable bool voltagesValid_ = false;

  // Step scratch (avoids per-step allocations on the hot path).
  mutable std::vector<double> scratchA_;
  mutable std::vector<double> scratchB_;
};

}  // namespace viaduct
