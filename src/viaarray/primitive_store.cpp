#include "viaarray/primitive_store.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/check.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace viaduct {

namespace {

/// Magic + store-format version. Bumping the version orphans every file
/// written under the old one (their loads miss and the next save rewrites).
constexpr const char* kMagic = "viaduct-stress-primitives v1";

/// Parses the whole file into key -> sigma line. A structural problem —
/// wrong magic/version, unknown directive, entry without a sigma line —
/// invalidates the whole file (empty map: every load misses). An entry
/// whose payload fails to parse (corrupt token, NaN, overflow) is dropped
/// individually: its loads miss, and the next save rewrites the file
/// without it.
std::map<std::string, std::string> readAll(const std::string& path) {
  std::map<std::string, std::string> entries;
  std::ifstream is(path);
  if (!is) return entries;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return entries;

  std::string key, sigma;
  bool haveSigma = false;
  auto flush = [&]() -> bool {
    if (key.empty()) return true;
    if (!haveSigma) return false;  // truncated entry: whole file invalid
    const auto parsed = parseDoubles(sigma);
    if (parsed && !parsed->empty()) entries[key] = std::move(sigma);
    key.clear();
    sigma.clear();
    haveSigma = false;
    return true;
  };
  while (std::getline(is, line)) {
    if (line.rfind("entry ", 0) == 0) {
      if (!flush()) return {};
      key = line.substr(6);
    } else if (line.rfind("sigma ", 0) == 0) {
      if (key.empty()) return {};  // sigma outside an entry
      sigma = line.substr(6);
      haveSigma = true;
    } else if (!line.empty()) {
      return {};  // unknown directive
    }
  }
  if (!flush()) return {};
  return entries;
}

/// fsync of a freshly written file, so the atomic rename below cannot land
/// before the data blocks do.
bool syncFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;  // best effort off POSIX
#endif
}

/// Best-effort fsync of the directory holding `path`, so the rename itself
/// survives a crash. Failure is not fatal (worst case: the previous file).
void syncParentDir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

StressPrimitiveStore::StressPrimitiveStore(std::string path)
    : path_(std::move(path)) {
  VIADUCT_REQUIRE(!path_.empty());
}

std::optional<std::vector<double>> StressPrimitiveStore::load(
    const std::string& key) const {
  VIADUCT_SPAN("primitive_store.load");
  VIADUCT_COUNTER_ADD("primitive_store.loads", 1);
  const auto entries = readAll(path_);
  const auto it = entries.find(key);
  if (it == entries.end()) return std::nullopt;
  // parseDoubles is non-throwing by contract: a corrupt token is a
  // malformed entry -> miss, same as a structural problem in readAll.
  auto sigma = parseDoubles(it->second);
  if (!sigma || sigma->empty()) return std::nullopt;
  // Models silent corruption that survives parsing (a truncated vector of
  // valid doubles): the caller's shape validation must degrade it to a
  // recompute, never an error.
  if (fault::shouldInject("primitive_store.load")) sigma->pop_back();
  return sigma;
}

void StressPrimitiveStore::save(const std::string& key,
                                const std::vector<double>& sigma) {
  VIADUCT_SPAN("primitive_store.save");
  VIADUCT_COUNTER_ADD("primitive_store.saves", 1);
  VIADUCT_REQUIRE(!key.empty() && !sigma.empty());
  // In-process writers serialize on the mutex (two concurrent saves would
  // race on the same .tmp path); cross-process safety is the atomic
  // rename below, unchanged.
  std::lock_guard lock(mutex_);
  auto entries = readAll(path_);
  entries[key] = formatDoubles(sigma);

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw ParseError("cannot write stress-primitive store: " + tmp);
    os << kMagic << '\n';
    for (const auto& [k, s] : entries)
      os << "entry " << k << '\n' << "sigma " << s << '\n';
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      throw ParseError("short write to stress-primitive store: " + tmp);
    }
  }
  if (!syncFile(tmp)) {
    std::remove(tmp.c_str());
    throw ParseError("cannot fsync stress-primitive store: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ParseError("cannot publish stress-primitive store: " + path_);
  }
  syncParentDir(path_);
  VIADUCT_DEBUG << "stress-primitive store: " << entries.size()
                << " entr(ies) at " << path_;
}

std::size_t StressPrimitiveStore::entryCount() const {
  return readAll(path_).size();
}

}  // namespace viaduct
