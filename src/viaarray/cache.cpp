#include "viaarray/cache.h"

#include <fstream>
#include <mutex>
#include <map>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace viaduct {

namespace {

constexpr const char* kMagic = "viaduct-characterization-cache v1";

struct RawEntry {
  std::string sigmaLine;
  std::vector<std::string> traceLines;
};

/// Parses the whole file into key -> raw lines; returns empty map on any
/// structural problem (treated as cache miss).
std::map<std::string, RawEntry> readAll(const std::string& path) {
  std::map<std::string, RawEntry> entries;
  std::ifstream is(path);
  if (!is) return entries;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return entries;

  std::string key;
  RawEntry current;
  auto flush = [&]() {
    if (!key.empty()) entries[key] = std::move(current);
    key.clear();
    current = RawEntry{};
  };
  while (std::getline(is, line)) {
    if (line.rfind("entry ", 0) == 0) {
      flush();
      key = line.substr(6);
    } else if (line.rfind("sigma ", 0) == 0) {
      current.sigmaLine = line.substr(6);
    } else if (line.rfind("trace ", 0) == 0) {
      current.traceLines.push_back(line.substr(6));
    } else if (!line.empty()) {
      return {};  // unknown directive: treat whole file as invalid
    }
  }
  flush();
  return entries;
}

}  // namespace

CharacterizationStore::CharacterizationStore(std::string path)
    : path_(std::move(path)) {
  VIADUCT_REQUIRE(!path_.empty());
}

std::optional<CharacterizationData> CharacterizationStore::load(
    const std::string& key) const {
  VIADUCT_SPAN("char_cache.store_load");
  VIADUCT_COUNTER_ADD("char_cache.store_loads", 1);
  std::lock_guard lock(mutex_);
  const auto entries = readAll(path_);
  const auto it = entries.find(key);
  if (it == entries.end()) return std::nullopt;

  CharacterizationData data;
  // parseDoubles is non-throwing by contract: a corrupt token ("nan",
  // "1e999999", a truncated write) is a malformed entry → cache miss,
  // exactly like a structural problem in readAll.
  auto sigma = parseDoubles(it->second.sigmaLine);
  if (!sigma || sigma->empty()) return std::nullopt;
  data.rawSigmaT = std::move(*sigma);
  for (const auto& line : it->second.traceLines) {
    const auto bar = line.find('|');
    if (bar == std::string::npos) return std::nullopt;
    FailureTrace trace;
    auto times = parseDoubles(std::string_view(line).substr(0, bar));
    auto resistances = parseDoubles(std::string_view(line).substr(bar + 1));
    if (!times || !resistances) return std::nullopt;
    trace.failureTimes = std::move(*times);
    trace.resistanceAfter = std::move(*resistances);
    if (trace.failureTimes.size() != trace.resistanceAfter.size() ||
        trace.failureTimes.empty()) {
      return std::nullopt;
    }
    data.traces.push_back(std::move(trace));
  }
  if (data.traces.empty()) return std::nullopt;
  // Models silent on-disk corruption that survives parsing: the entry loads
  // but the rehydration-time shape validation in ViaArrayCharacterization
  // rejects it (truncated final trace).
  if (fault::shouldInject("char_cache.load")) {
    data.traces.back().failureTimes.pop_back();
    data.traces.back().resistanceAfter.pop_back();
  }
  return data;
}

void CharacterizationStore::save(const std::string& key,
                                 const CharacterizationData& data) {
  VIADUCT_SPAN("char_cache.store_save");
  VIADUCT_COUNTER_ADD("char_cache.store_saves", 1);
  VIADUCT_REQUIRE(!data.rawSigmaT.empty() && !data.traces.empty());
  // Serialize read-modify-rewrite cycles within the process; see cache.h.
  std::lock_guard lock(mutex_);
  auto entries = readAll(path_);

  std::ofstream os(path_, std::ios::trunc);
  if (!os) throw ParseError("cannot write characterization cache: " + path_);
  os << kMagic << '\n';

  auto writeEntry = [&os](const std::string& k, const RawEntry& e) {
    os << "entry " << k << '\n';
    os << "sigma " << e.sigmaLine << '\n';
    for (const auto& t : e.traceLines) os << "trace " << t << '\n';
  };
  for (const auto& [k, e] : entries) {
    if (k == key) continue;  // replaced below
    writeEntry(k, e);
  }

  RawEntry fresh;
  {
    std::ostringstream sig;
    writeDoubles(sig, data.rawSigmaT);
    fresh.sigmaLine = sig.str();
    for (const auto& trace : data.traces) {
      std::ostringstream tl;
      writeDoubles(tl, trace.failureTimes);
      tl << " | ";
      writeDoubles(tl, trace.resistanceAfter);
      fresh.traceLines.push_back(tl.str());
    }
  }
  writeEntry(key, fresh);
  VIADUCT_DEBUG << "characterization cache: stored entry (" << entries.size() + 1
                << " total)";
}

std::size_t CharacterizationStore::entryCount() const {
  std::lock_guard lock(mutex_);
  return readAll(path_).size();
}

}  // namespace viaduct
