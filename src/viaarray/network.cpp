#include "viaarray/network.h"

#include <cmath>

#include "common/check.h"
#include "fault/fault.h"

namespace viaduct {

ViaArrayNetwork::ViaArrayNetwork(const ViaArrayNetworkConfig& config)
    : config_(config) {
  VIADUCT_REQUIRE(config.n >= 1);
  VIADUCT_REQUIRE(config.arrayResistanceOhms > 0.0);
  VIADUCT_REQUIRE(config.sheetResistancePerSquare >= 0.0);
  VIADUCT_REQUIRE(config.totalCurrentAmps > 0.0);
  reset();
  nominalResistance_ = effectiveResistance();
}

void ViaArrayNetwork::reset() {
  alive_.assign(static_cast<std::size_t>(viaCount()), true);
  aliveCount_ = viaCount();
}

bool ViaArrayNetwork::viaAlive(int via) const {
  VIADUCT_REQUIRE(via >= 0 && via < viaCount());
  return alive_[static_cast<std::size_t>(via)];
}

void ViaArrayNetwork::failVia(int via) {
  VIADUCT_REQUIRE(via >= 0 && via < viaCount());
  VIADUCT_REQUIRE_MSG(alive_[static_cast<std::size_t>(via)],
                      "via already failed");
  alive_[static_cast<std::size_t>(via)] = false;
  --aliveCount_;
}

int ViaArrayNetwork::viaIndex(int row, int col) const {
  VIADUCT_REQUIRE(row >= 0 && row < config_.n && col >= 0 && col < config_.n);
  return row * config_.n + col;
}

double ViaArrayNetwork::idealResistanceIncrease(int totalVias,
                                                int failedVias) {
  VIADUCT_REQUIRE(totalVias >= 1 && failedVias >= 0 &&
                  failedVias < totalVias);
  return static_cast<double>(failedVias) /
         static_cast<double>(totalVias - failedVias);
}

// Node layout for the dense solve:
//   0 .. n²-1        upper plate nodes (row-major)
//   n² .. 2n²-1      lower plate nodes
//   2n²              feed rail (current injected here)
// The drain rail is ground (eliminated).
void ViaArrayNetwork::solveNetwork(std::vector<double>& v) const {
  if (aliveCount_ == 0)
    throw NumericalError("via array fully failed: no conducting path");
  // Mimics the organic all-vias-failed singularity so level-1 trial
  // salvage/discard handling sees the same exception type either way.
  if (fault::shouldInject("network.resolve")) {
    throw NumericalError("via array network solve failed (injected fault)");
  }
  const int n = config_.n;
  const int plate = n * n;
  const int feed = 2 * plate;
  const int total = 2 * plate + 1;

  const double gVia =
      1.0 / (config_.arrayResistanceOhms * static_cast<double>(plate));
  // Lateral plate segments: one square per pitch step per track.
  const double gSheet = config_.sheetResistancePerSquare > 0.0
                            ? 1.0 / config_.sheetResistancePerSquare
                            : 0.0;
  // Rail hookups use a half-segment.
  const double gRail = gSheet > 0.0 ? 2.0 * gSheet : 0.0;

  DenseMatrix g(static_cast<std::size_t>(total), static_cast<std::size_t>(total));
  auto stamp = [&g](int a, int b, double cond) {
    // b < 0 denotes ground.
    if (a >= 0) g(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) += cond;
    if (b >= 0) g(static_cast<std::size_t>(b), static_cast<std::size_t>(b)) += cond;
    if (a >= 0 && b >= 0) {
      g(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) -= cond;
      g(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) -= cond;
    }
  };

  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const int u = r * n + c;
      const int l = plate + r * n + c;
      if (alive_[static_cast<std::size_t>(r * n + c)]) stamp(u, l, gVia);
      if (gSheet > 0.0) {
        if (c + 1 < n) {
          stamp(u, r * n + c + 1, gSheet);
          stamp(l, plate + r * n + c + 1, gSheet);
        }
        if (r + 1 < n) {
          stamp(u, (r + 1) * n + c, gSheet);
          stamp(l, plate + (r + 1) * n + c, gSheet);
        }
      }
      // Feed rail ties to the upper plate's -y edge (row 0).
      if (r == 0) stamp(feed, u, gRail > 0.0 ? gRail : 1e6);
      // Drain (ground) ties to the lower plate's +x edge (col n-1).
      if (c == n - 1) stamp(l, -1, gRail > 0.0 ? gRail : 1e6);
    }
  }

  // Degenerate n == 1 case with no sheet segments is handled by the 1e6
  // rail conductances above (they cancel out of relative comparisons).
  std::vector<double> rhs(static_cast<std::size_t>(total), 0.0);
  rhs[static_cast<std::size_t>(feed)] = config_.totalCurrentAmps;
  v = g.solve(rhs);
}

std::vector<double> ViaArrayNetwork::viaCurrents() const {
  std::vector<double> v;
  solveNetwork(v);
  const int n = config_.n;
  const int plate = n * n;
  const double gVia =
      1.0 / (config_.arrayResistanceOhms * static_cast<double>(plate));
  std::vector<double> currents(static_cast<std::size_t>(plate), 0.0);
  for (int i = 0; i < plate; ++i) {
    if (!alive_[static_cast<std::size_t>(i)]) continue;
    currents[static_cast<std::size_t>(i)] =
        (v[static_cast<std::size_t>(i)] -
         v[static_cast<std::size_t>(plate + i)]) *
        gVia;
  }
  return currents;
}

double ViaArrayNetwork::effectiveResistance() const {
  std::vector<double> v;
  solveNetwork(v);
  const int feed = 2 * config_.n * config_.n;
  return v[static_cast<std::size_t>(feed)] / config_.totalCurrentAmps;
}

}  // namespace viaduct
