#include "viaarray/network.h"

#include <cmath>

#include "common/check.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace viaduct {

namespace {

// Node layout for the dense solve:
//   0 .. n²-1        upper plate nodes (row-major)
//   n² .. 2n²-1      lower plate nodes
//   2n²              feed rail (current injected here)
// The drain rail is ground (eliminated).
//
// One topology walk shared by the matrix stamping and the (matrix-free)
// KCL residual: `branch(a, b, g)` is called once per two-terminal
// conductance, with b < 0 denoting ground.
template <typename Fn>
void forEachBranch(const ViaArrayNetworkConfig& config,
                   const std::vector<bool>& alive, Fn&& branch) {
  const int n = config.n;
  const int plate = n * n;
  const int feed = 2 * plate;
  const double gVia =
      1.0 / (config.arrayResistanceOhms * static_cast<double>(plate));
  // Lateral plate segments: one square per pitch step per track.
  const double gSheet = config.sheetResistancePerSquare > 0.0
                            ? 1.0 / config.sheetResistancePerSquare
                            : 0.0;
  // Rail hookups use a half-segment. The degenerate n == 1 case with no
  // sheet segments is handled by the 1e6 rail conductances (they cancel
  // out of relative comparisons).
  const double gRail = gSheet > 0.0 ? 2.0 * gSheet : 1e6;

  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const int u = r * n + c;
      const int l = plate + r * n + c;
      if (alive[static_cast<std::size_t>(u)]) branch(u, l, gVia);
      if (gSheet > 0.0) {
        if (c + 1 < n) {
          branch(u, r * n + c + 1, gSheet);
          branch(l, plate + r * n + c + 1, gSheet);
        }
        if (r + 1 < n) {
          branch(u, (r + 1) * n + c, gSheet);
          branch(l, plate + (r + 1) * n + c, gSheet);
        }
      }
      // Feed rail ties to the upper plate's -y edge (row 0).
      if (r == 0) branch(feed, u, gRail);
      // Drain (ground) ties to the lower plate's +x edge (col n-1).
      if (c == n - 1) branch(l, -1, gRail);
    }
  }
}

}  // namespace

ViaArrayNetwork::ViaArrayNetwork(const ViaArrayNetworkConfig& config)
    : config_(config) {
  VIADUCT_REQUIRE(config.n >= 1);
  VIADUCT_REQUIRE(config.arrayResistanceOhms > 0.0);
  VIADUCT_REQUIRE(config.sheetResistancePerSquare >= 0.0);
  VIADUCT_REQUIRE(config.totalCurrentAmps > 0.0);
  VIADUCT_REQUIRE(config.refreshResidualTolerance > 0.0);
  alive_.assign(static_cast<std::size_t>(viaCount()), true);
  aliveCount_ = viaCount();

  // Build the immutable shared base: the healthy system stamped and solved
  // (and, on the incremental path, factored) exactly once per
  // configuration. Every copy of this network shares it.
  const int plate = config_.n * config_.n;
  const int feed = 2 * plate;
  const auto total = static_cast<std::size_t>(2 * plate + 1);
  auto base = std::make_shared<Base>();
  base->gVia =
      1.0 / (config_.arrayResistanceOhms * static_cast<double>(plate));
  base->rhs.assign(total, 0.0);
  base->rhs[static_cast<std::size_t>(feed)] = config_.totalCurrentAmps;
  stampMatrix(base->healthyG);
  if (config_.exactResolve) {
    base->healthyVoltages = base->healthyG.solve(base->rhs);
  } else {
    VIADUCT_SPAN("viaarray.base_factor");
    VIADUCT_COUNTER_ADD("viaarray.base_factor_builds", 1);
    base->healthyFactor = DenseCholeskyFactor(base->healthyG);
    base->healthyVoltages = base->healthyFactor.solve(base->rhs);
  }
  base->nominalResistance =
      base->healthyVoltages[static_cast<std::size_t>(feed)] /
      config_.totalCurrentAmps;
  base_ = std::move(base);
  voltages_ = base_->healthyVoltages;
  voltagesValid_ = true;
}

void ViaArrayNetwork::reset() {
  alive_.assign(static_cast<std::size_t>(viaCount()), true);
  aliveCount_ = viaCount();
  factor_ = DenseCholeskyFactor();
  ownFactor_ = false;
  factorStale_ = false;
  voltages_ = base_->healthyVoltages;
  voltagesValid_ = true;
}

bool ViaArrayNetwork::viaAlive(int via) const {
  VIADUCT_REQUIRE(via >= 0 && via < viaCount());
  return alive_[static_cast<std::size_t>(via)];
}

void ViaArrayNetwork::failVia(int via) {
  VIADUCT_REQUIRE(via >= 0 && via < viaCount());
  VIADUCT_REQUIRE_MSG(alive_[static_cast<std::size_t>(via)],
                      "via already failed");
  alive_[static_cast<std::size_t>(via)] = false;
  --aliveCount_;
  voltagesValid_ = false;

  if (config_.exactResolve) return;
  if (aliveCount_ == 0) {
    // Singular system: no downdate (and no solve — nodeVoltages() throws).
    factorStale_ = true;
    return;
  }
  if (!ownFactor_) {
    // Copy-on-write: clone the shared healthy factor on first failure.
    factor_ = base_->healthyFactor;
    ownFactor_ = true;
  }
  if (factorStale_) return;  // already awaiting a refresh; keep it stale
  // Removing a via is the rank-1 conductance change
  //   G ← G − gVia (e_u − e_l)(e_u − e_l)ᵀ,
  // a Sherman–Morrison downdate of the Cholesky factor.
  const int plate = config_.n * config_.n;
  scratchA_.assign(static_cast<std::size_t>(2 * plate + 1), 0.0);
  std::vector<double>& incidence = scratchA_;
  incidence[static_cast<std::size_t>(via)] = 1.0;
  incidence[static_cast<std::size_t>(plate + via)] = -1.0;
  try {
    factor_.rankOneUpdate(incidence, -base_->gVia);
    VIADUCT_COUNTER_ADD("viaarray.downdates", 1);
  } catch (const NumericalError&) {
    // A rejected downdate (accumulated roundoff near singularity) is not a
    // trial failure: degrade to a from-scratch factorization at the next
    // solve. Deterministic — independent of the failure policy.
    factorStale_ = true;
  }
}

int ViaArrayNetwork::viaIndex(int row, int col) const {
  VIADUCT_REQUIRE(row >= 0 && row < config_.n && col >= 0 && col < config_.n);
  return row * config_.n + col;
}

double ViaArrayNetwork::idealResistanceIncrease(int totalVias,
                                                int failedVias) {
  VIADUCT_REQUIRE(totalVias >= 1 && failedVias >= 0 &&
                  failedVias < totalVias);
  return static_cast<double>(failedVias) /
         static_cast<double>(totalVias - failedVias);
}

void ViaArrayNetwork::stampMatrix(DenseMatrix& g) const {
  const auto total = static_cast<std::size_t>(2 * config_.n * config_.n + 1);
  g = DenseMatrix(total, total);
  forEachBranch(config_, alive_, [&g](int a, int b, double cond) {
    if (a >= 0)
      g(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) += cond;
    if (b >= 0)
      g(static_cast<std::size_t>(b), static_cast<std::size_t>(b)) += cond;
    if (a >= 0 && b >= 0) {
      g(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) -= cond;
      g(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) -= cond;
    }
  });
}

double ViaArrayNetwork::topologyResidual(const std::vector<double>& v) const {
  // r = G v − b accumulated branch by branch in O(n²): the dense matrix is
  // never formed, which keeps the per-solve residual guard far cheaper
  // than the triangular solves it protects. Normalized backward-error
  // style, ‖r‖ / ‖ |G||v| + |b| ‖, so that ill-scaled stampings (the 1e6
  // rail conductance of the zero-sheet degenerate case) don't flag a
  // perfectly backward-stable solve.
  const std::vector<double>& rhs = base_->rhs;
  scratchA_.resize(rhs.size());
  scratchB_.resize(rhs.size());
  std::vector<double>& r = scratchA_;
  std::vector<double>& scale = scratchB_;
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = -rhs[i];
    scale[i] = std::abs(rhs[i]);
  }
  forEachBranch(config_, alive_, [&](int a, int b, double cond) {
    const double va = a >= 0 ? v[static_cast<std::size_t>(a)] : 0.0;
    const double vb = b >= 0 ? v[static_cast<std::size_t>(b)] : 0.0;
    const double flow = cond * (va - vb);
    const double mag = cond * (std::abs(va) + std::abs(vb));
    if (a >= 0) {
      r[static_cast<std::size_t>(a)] += flow;
      scale[static_cast<std::size_t>(a)] += mag;
    }
    if (b >= 0) {
      r[static_cast<std::size_t>(b)] -= flow;
      scale[static_cast<std::size_t>(b)] += mag;
    }
  });
  double rr = 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    rr += r[i] * r[i];
    ss += scale[i] * scale[i];
  }
  return ss > 0.0 ? std::sqrt(rr / ss) : std::sqrt(rr);
}

void ViaArrayNetwork::solveExact(std::vector<double>& v) const {
  // Mimics the organic all-vias-failed singularity so level-1 trial
  // salvage/discard handling sees the same exception type either way.
  if (fault::shouldInject("network.resolve")) {
    throw NumericalError("via array network solve failed (injected fault)");
  }
  VIADUCT_SPAN("viaarray.network_solve_exact");
  VIADUCT_COUNTER_ADD("viaarray.network_factorizations", 1);
  DenseMatrix g;
  stampMatrix(g);
  v = g.solve(base_->rhs);
}

void ViaArrayNetwork::solveIncremental(std::vector<double>& v) const {
  bool forceRefresh = false;
  if (fault::shouldInject("network.resolve")) {
    // FailurePolicy tie-in: under a permissive policy a failed incremental
    // solve degrades to a fresh factorization of the current state instead
    // of aborting the trial; otherwise it surfaces like the legacy path.
    if (ownFactor_ && config_.policy.enabled &&
        config_.policy.refactorOnWoodburyFailure) {
      VIADUCT_COUNTER_ADD("viaarray.fault_degraded_solves", 1);
      forceRefresh = true;
    } else {
      throw NumericalError("via array network solve failed (injected fault)");
    }
  }
  if (!ownFactor_) {
    // Healthy state (normally served by the memo): shared base solution.
    v = base_->healthyVoltages;
    return;
  }
  const auto refresh = [this] {
    VIADUCT_SPAN("viaarray.network_refactor");
    VIADUCT_COUNTER_ADD("viaarray.refactors", 1);
    VIADUCT_COUNTER_ADD("viaarray.network_factorizations", 1);
    DenseMatrix g;
    stampMatrix(g);
    factor_.factor(g);  // throws NumericalError when truly singular
    factorStale_ = false;
  };
  if (factorStale_ || forceRefresh) refresh();
  v.resize(base_->rhs.size());
  factor_.solve(base_->rhs, v);
  // Residual guard: downdate roundoff accumulates over a trial's failure
  // sequence; when it breaches the tolerance the state is re-factored from
  // scratch (counted, so the collapse in factorizations stays observable).
  const double residual = topologyResidual(v);
  if (!(residual <= config_.refreshResidualTolerance)) {
    refresh();
    factor_.solve(base_->rhs, v);
    const double after = topologyResidual(v);
    if (!(after <= config_.refreshResidualTolerance)) {
      throw NumericalError(
          "via array network residual above tolerance after a fresh "
          "factorization");
    }
  }
}

const std::vector<double>& ViaArrayNetwork::nodeVoltages() const {
  if (aliveCount_ == 0)
    throw NumericalError("via array fully failed: no conducting path");
  if (!voltagesValid_) {
    VIADUCT_COUNTER_ADD("viaarray.network_solves", 1);
    if (config_.exactResolve) {
      solveExact(voltages_);
    } else {
      solveIncremental(voltages_);
    }
    voltagesValid_ = true;
  }
  return voltages_;
}

std::vector<double> ViaArrayNetwork::viaCurrents() const {
  const std::vector<double>& v = nodeVoltages();
  const int plate = config_.n * config_.n;
  std::vector<double> currents(static_cast<std::size_t>(plate), 0.0);
  for (int i = 0; i < plate; ++i) {
    if (!alive_[static_cast<std::size_t>(i)]) continue;
    currents[static_cast<std::size_t>(i)] =
        (v[static_cast<std::size_t>(i)] -
         v[static_cast<std::size_t>(plate + i)]) *
        base_->gVia;
  }
  return currents;
}

double ViaArrayNetwork::effectiveResistance() const {
  const std::vector<double>& v = nodeVoltages();
  const int feed = 2 * config_.n * config_.n;
  return v[static_cast<std::size_t>(feed)] / config_.totalCurrentAmps;
}

}  // namespace viaduct
