// viaduct command-line driver: the library's main flows as subcommands.
//
//   viaduct_cli generate     --preset PG1 --out grid.spice
//   viaduct_cli analyze      --netlist grid.spice --via-n 4 --trials 300
//   viaduct_cli characterize --n 8 --pattern T --criterion 2x
//   viaduct_cli signoff      --preset PG1 --limit 2e10
//   viaduct_cli census       --preset PG1 --margin-mpa 340
//
// Every subcommand accepts --help. Global flags work with any command and
// are stripped before subcommand parsing:
//   --metrics-out FILE   write the obs metrics snapshot (JSON) at exit
//   --trace-out FILE     record spans and write a Chrome trace-event JSON
//                        (load in chrome://tracing or ui.perfetto.dev)
//   --fault-spec SPEC    arm deterministic fault injection, e.g.
//                        "seed=42;cg.nonconverge:p=0.05;cholesky.factor:nth=3"
//                        (also readable from the VIADUCT_FAULTS env var)
//   --obs-listen H:P     serve live telemetry over HTTP while the run is
//                        in flight (/metrics OpenMetrics, /metrics.json,
//                        /debug/solves, /healthz); port 0 = ephemeral
//   --metrics-stream F   append periodic registry snapshots to F (JSONL,
//                        crash-safe: complete lines survive a SIGKILL)
//   --metrics-every N    sampling interval for --metrics-stream, seconds
//   --progress           print periodic progress/ETA lines (lowers the log
//                        level to INFO; VIADUCT_LOG_JSON=1 for JSON lines)
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/table.h"
#include "common/units.h"
#include "core/analyzer.h"
#include "fault/fault.h"
#include "grid/signoff.h"
#include "grid/wire_mortality.h"
#include "obs/http.h"
#include "obs/obs.h"
#include "obs/sampler.h"
#include "spice/generator.h"
#include "spice/parser.h"
#include "spice/writer.h"
#include "viaarray/cache.h"
#include "viaarray/primitive_store.h"

using namespace viaduct;

namespace {

Netlist loadGrid(const std::string& netlistPath, const std::string& preset) {
  if (!netlistPath.empty()) return parseSpiceFile(netlistPath);
  if (preset == "PG1") return generatePgBenchmark(PgPreset::kPg1);
  if (preset == "PG2") return generatePgBenchmark(PgPreset::kPg2);
  if (preset == "PG5") return generatePgBenchmark(PgPreset::kPg5);
  throw PreconditionError("unknown preset '" + preset + "' (PG1/PG2/PG5)");
}

int cmdGenerate(int argc, const char* const* argv) {
  std::string preset = "PG1";
  std::string out;
  int stripes = 0;
  int layers = 2;
  double amps = 0.0;
  CliFlags flags("viaduct_cli generate: write a synthetic power-grid netlist");
  flags.addString("preset", &preset, "PG1, PG2, or PG5");
  flags.addString("out", &out, "output SPICE file (stdout if empty)");
  flags.addInt("stripes", &stripes, "override stripe count (0 = preset)");
  flags.addInt("layers", &layers, "routed metal layers");
  flags.addDouble("amps", &amps, "override total load current (0 = preset)");
  if (!flags.parse(argc, argv)) return 0;

  GridGeneratorConfig cfg =
      preset == "PG2"   ? pgPresetConfig(PgPreset::kPg2)
      : preset == "PG5" ? pgPresetConfig(PgPreset::kPg5)
                        : pgPresetConfig(PgPreset::kPg1);
  if (stripes > 0) cfg.stripesX = cfg.stripesY = stripes;
  if (amps > 0.0) cfg.totalCurrentAmps = amps;
  cfg.layers = layers;
  const Netlist netlist = generatePowerGrid(cfg);
  if (out.empty()) {
    writeSpice(netlist, std::cout);
  } else {
    writeSpiceFile(netlist, out);
    std::cout << "wrote " << out << " (" << netlist.resistors().size()
              << " resistors, " << netlist.currentSources().size()
              << " loads)\n";
  }
  return 0;
}

int cmdAnalyze(int argc, const char* const* argv) {
  std::string netlistPath, preset = "PG1", arrayCrit = "open",
                           systemCrit = "ir", cachePath, checkpointPath,
                           feaPrecond = "mg", primitiveStorePath;
  int viaN = 4, trials = 300, charTrials = 300, threads = 0,
      checkpointEvery = 32;
  bool resume = false, exactResolve = false, wireAudit = false;
  double tuneIr = 0.06, wireMarginMpa = 340.0;
  std::string gridSolver = "uplooking", gridOrdering = "rcm",
              emMode = "steady";
  CliFlags flags("viaduct_cli analyze: two-level EM TTF analysis");
  flags.addString("netlist", &netlistPath, "SPICE netlist (overrides preset)");
  flags.addString("preset", &preset, "PG1/PG2/PG5");
  flags.addInt("via-n", &viaN, "via array dimension");
  flags.addString("array-criterion", &arrayCrit,
                  "open, weakest, <k>, or <r>x");
  flags.addString("system-criterion", &systemCrit, "ir or weakest");
  flags.addInt("trials", &trials, "grid Monte Carlo trials");
  flags.addInt("char-trials", &charTrials, "characterization trials");
  flags.addDouble("tune-ir", &tuneIr, "nominal IR-drop tuning target");
  flags.addString("cache", &cachePath, "characterization cache file");
  flags.addInt("threads", &threads,
               "worker threads (0 = hardware concurrency); results are "
               "identical for any value");
  flags.addString("checkpoint", &checkpointPath,
                  "crash-safe snapshot file for both MC levels (empty = "
                  "disabled); results are identical with or without it");
  flags.addInt("checkpoint-every", &checkpointEvery,
               "snapshot every N completed trials (<= 0: only at run end)");
  flags.addBool("resume", &resume,
                "resume completed trials from --checkpoint (stale or "
                "corrupt snapshots are rejected and re-run)");
  flags.addBool("exact-resolve", &exactResolve,
                "characterize with the legacy from-scratch LU network solve "
                "instead of the incremental factor-downdate path (slow; A/B "
                "verification only)");
  flags.addString("fea-precond", &feaPrecond,
                  "FEA stress-solve preconditioner: mg (geometric multigrid, "
                  "fastest), ic0, or bj (seed baseline)");
  flags.addString("primitive-store", &primitiveStorePath,
                  "on-disk FEA stress-primitive store; a warm store "
                  "characterizes with zero FEA solves");
  flags.addString("grid-solver", &gridSolver,
                  "direct solver for the grid system: uplooking|supernodal "
                  "(supernodal+amd scales to ~1e6-node meshes)");
  flags.addString("grid-ordering", &gridOrdering,
                  "fill-reducing ordering: natural|rcm|mindeg|amd");
  flags.addBool("wire-audit", &wireAudit,
                "audit every MC failure configuration's wire stresses with "
                "the steady-state tree solver (diagnostic; TTF samples are "
                "unchanged)");
  flags.addString("em-mode", &emMode,
                  "wire-EM verdict mode: steady|transient|hybrid "
                  "(steady = linear-time closed form; hybrid = steady "
                  "filter + transient confirmation of the mortal minority). "
                  "Joins the grid-MC checkpoint key (gridmc-v3)");
  flags.addDouble("wire-margin-mpa", &wireMarginMpa,
                  "wire stress margin sigma_C - sigma_T - sigma_pkg [MPa]");
  if (!flags.parse(argc, argv)) return 0;

  AnalyzerConfig config;
  config.gridConfig.gridSolver = parseSpdSolverKind(gridSolver);
  config.gridConfig.gridOrdering = parseOrderingChoice(gridOrdering);
  config.viaArraySize = viaN;
  config.trials = trials;
  config.characterization.trials = charTrials;
  config.characterization.network.exactResolve = exactResolve;
  const auto kind = parseFeaPreconditionerName(feaPrecond);
  if (!kind)
    throw PreconditionError("unknown --fea-precond '" + feaPrecond +
                            "' (mg, ic0, or bj)");
  config.characterization.feaPreconditioner = *kind;
  if (!primitiveStorePath.empty())
    config.characterization.primitiveStore =
        std::make_shared<StressPrimitiveStore>(primitiveStorePath);
  config.tuneNominalIrDropFraction = tuneIr;
  config.parallelism.threads = threads;
  config.checkpoint.path = checkpointPath;
  config.checkpoint.everyTrials = checkpointEvery;
  config.checkpoint.resume = resume;
  if (resume && checkpointPath.empty())
    throw PreconditionError("--resume needs --checkpoint <path>");
  config.wireEmAudit = wireAudit;
  config.emMode = parseSignoffMode(emMode);
  config.wireStressMarginPa = wireMarginMpa * units::MPa;

  auto library =
      cachePath.empty()
          ? std::make_shared<ViaArrayLibrary>()
          : std::make_shared<ViaArrayLibrary>(
                std::make_shared<CharacterizationStore>(cachePath));
  PowerGridEmAnalyzer analyzer(loadGrid(netlistPath, preset), config,
                               library);

  const auto acParsed = ViaArrayFailureCriterion::parse(arrayCrit);
  if (!acParsed)
    throw PreconditionError("bad --array-criterion '" + arrayCrit +
                            "' (open, weakest, <k>, or <r>x)");
  const auto ac = *acParsed;
  const auto sc = systemCrit == "weakest" ? GridFailureCriterion::weakestLink()
                                          : GridFailureCriterion::irDrop(0.10);
  const auto report = analyzer.analyze(ac, sc);
  std::cout << "grid: " << analyzer.model().unknownCount() << " nodes, "
            << analyzer.model().viaArrays().size() << " via arrays ("
            << viaN << "x" << viaN << ")\n";
  std::cout << "criteria: array " << report.arrayCriterion << ", system "
            << report.systemCriterion << "\n";
  std::cout << "worst-case TTF: " << TextTable::num(report.worstCaseYears, 2)
            << " years (95% CI "
            << TextTable::num(report.worstCaseCiLowYears, 2) << "-"
            << TextTable::num(report.worstCaseCiHighYears, 2)
            << "), median " << TextTable::num(report.medianYears, 2)
            << " years, " << TextTable::num(report.meanFailuresToBreach, 1)
            << " failures to breach\n";
  if (report.discardedTrials > 0 || report.salvagedTrials > 0) {
    std::cout << "fault policy: " << report.discardedTrials
              << " trials discarded, " << report.salvagedTrials
              << " salvaged (of " << trials << ")\n";
  }
  if (report.resumedTrials > 0) {
    std::cout << "checkpoint: resumed " << report.resumedTrials << "/"
              << trials << " grid trials from " << checkpointPath << "\n";
  }
  if (wireAudit) {
    std::cout << "wire-EM audit (" << emMode << "): "
              << report.wireMortalConfigs << "/" << report.wireAuditedConfigs
              << " failure configurations with mortal wires ("
              << report.wireMortalTrials << "/" << trials << " trials)\n";
  }
  return 0;
}

int cmdCharacterize(int argc, const char* const* argv) {
  int n = 4, trials = 500, threads = 0, checkpointEvery = 32;
  bool resume = false, exactResolve = false;
  std::string pattern = "Plus", criterion = "open", cachePath, checkpointPath,
              feaPrecond = "mg", primitiveStorePath;
  CliFlags flags("viaduct_cli characterize: level-1 via-array TTF");
  flags.addInt("n", &n, "via array dimension");
  flags.addString("pattern", &pattern, "Plus, T, or L");
  flags.addString("criterion", &criterion, "open, weakest, <k>, or <r>x");
  flags.addInt("trials", &trials, "Monte Carlo trials");
  flags.addString("cache", &cachePath, "characterization cache file");
  flags.addInt("threads", &threads,
               "worker threads (0 = hardware concurrency); results are "
               "identical for any value");
  flags.addString("checkpoint", &checkpointPath,
                  "crash-safe snapshot file for the characterization Monte "
                  "Carlo (empty = disabled)");
  flags.addInt("checkpoint-every", &checkpointEvery,
               "snapshot every N completed trials (<= 0: only at run end)");
  flags.addBool("resume", &resume,
                "resume completed trials from --checkpoint (stale or "
                "corrupt snapshots are rejected and re-run)");
  flags.addBool("exact-resolve", &exactResolve,
                "use the legacy from-scratch LU network solve instead of "
                "the incremental factor-downdate path (slow; A/B "
                "verification only)");
  flags.addString("fea-precond", &feaPrecond,
                  "FEA stress-solve preconditioner: mg (geometric multigrid, "
                  "fastest), ic0, or bj (seed baseline)");
  flags.addString("primitive-store", &primitiveStorePath,
                  "on-disk FEA stress-primitive store; a warm store "
                  "characterizes with zero FEA solves");
  if (!flags.parse(argc, argv)) return 0;

  ViaArrayCharacterizationSpec spec;
  spec.array.n = n;
  spec.network.exactResolve = exactResolve;
  const auto kind = parseFeaPreconditionerName(feaPrecond);
  if (!kind)
    throw PreconditionError("unknown --fea-precond '" + feaPrecond +
                            "' (mg, ic0, or bj)");
  spec.feaPreconditioner = *kind;
  if (!primitiveStorePath.empty())
    spec.primitiveStore =
        std::make_shared<StressPrimitiveStore>(primitiveStorePath);
  spec.pattern = pattern == "T"   ? IntersectionPattern::kT
                 : pattern == "L" ? IntersectionPattern::kL
                                  : IntersectionPattern::kPlus;
  spec.trials = trials;
  spec.parallelism.threads = threads;
  spec.checkpoint.path = checkpointPath;
  spec.checkpoint.everyTrials = checkpointEvery;
  spec.checkpoint.resume = resume;
  if (resume && checkpointPath.empty())
    throw PreconditionError("--resume needs --checkpoint <path>");

  auto library =
      cachePath.empty()
          ? std::make_shared<ViaArrayLibrary>()
          : std::make_shared<ViaArrayLibrary>(
                std::make_shared<CharacterizationStore>(cachePath));
  auto ch = library->get(spec);
  const auto critParsed = ViaArrayFailureCriterion::parse(criterion);
  if (!critParsed)
    throw PreconditionError("bad --criterion '" + criterion +
                            "' (open, weakest, <k>, or <r>x)");
  const auto crit = *critParsed;
  const auto cdf = ch->ttfCdf(crit);
  const auto fit = ch->ttfLognormal(crit);
  std::cout << n << "x" << n << " " << patternName(spec.pattern)
            << " array, criterion " << crit.describe() << ":\n";
  std::cout << "  median " << TextTable::num(cdf.median() / units::year, 2)
            << " yr, 0.3%ile " << TextTable::num(cdf.worstCase() / units::year, 2)
            << " yr, lognormal(mu=" << TextTable::num(fit.mu(), 3)
            << ", sigma=" << TextTable::num(fit.sigma(), 3) << ")\n";
  if (ch->resumedTrials() > 0) {
    std::cout << "  checkpoint: resumed " << ch->resumedTrials() << "/"
              << trials << " trials from " << checkpointPath << "\n";
  }
  return 0;
}

int cmdSignoff(int argc, const char* const* argv) {
  std::string netlistPath, preset = "PG1", emMode = "hybrid";
  double limit = 2e10;
  double tuneIr = 0.06, wireMarginMpa = 340.0;
  bool wires = false;
  CliFlags flags("viaduct_cli signoff: traditional current-density check");
  flags.addString("netlist", &netlistPath, "SPICE netlist (overrides preset)");
  flags.addString("preset", &preset, "PG1/PG2/PG5");
  flags.addDouble("limit", &limit, "foundry via limit [A/m^2]");
  flags.addDouble("tune-ir", &tuneIr,
                  "retune loads to this nominal IR fraction (0 = as-is)");
  flags.addBool("wires", &wires,
                "also sign off wire trees with the steady-state EM solver");
  flags.addString("em-mode", &emMode,
                  "wire-EM verdict mode: steady|transient|hybrid");
  flags.addDouble("wire-margin-mpa", &wireMarginMpa,
                  "wire stress margin sigma_C - sigma_T - sigma_pkg [MPa]");
  if (!flags.parse(argc, argv)) return 0;

  Netlist netlist = loadGrid(netlistPath, preset);
  if (tuneIr > 0.0) tuneNominalIrDrop(netlist, tuneIr);
  const PowerGridModel model(netlist);
  SignoffConfig cfg;
  cfg.currentDensityLimit = limit;
  cfg.emMode = parseSignoffMode(emMode);
  cfg.wireStressMarginPa = wireMarginMpa * units::MPa;
  const auto report = signoffViaArrays(model, cfg);
  std::cout << (report.passed() ? "PASS" : "FAIL") << ": "
            << report.violations << "/" << report.totalArrays
            << " via arrays over the limit; worst j = "
            << report.worstCurrentDensity << " A/m^2 ("
            << TextTable::num(100.0 * report.worstUtilization(), 1)
            << "% of limit)\n";
  bool wiresPassed = true;
  if (wires) {
    const auto wireReport = signoffWires(netlist, cfg);
    wiresPassed = wireReport.passed();
    std::cout << (wireReport.passed() ? "PASS" : "FAIL") << ": wires ("
              << signoffModeName(wireReport.mode) << "): "
              << wireReport.mortalTrees << "/" << wireReport.trees
              << " trees mortal, worst steady stress rise "
              << TextTable::num(wireReport.worstStressRisePa / units::MPa, 1)
              << " MPa vs margin "
              << TextTable::num(wireReport.stressMarginPa / units::MPa, 1)
              << " MPa";
    if (wireReport.transientFallbacks > 0)
      std::cout << " (" << wireReport.transientFallbacks
                << " transient fallbacks)";
    if (wireReport.cyclicComponents > 0)
      std::cout << " [" << wireReport.cyclicComponents
                << " cyclic components via Blech, "
                << wireReport.mortalCyclicSegments << " mortal]";
    std::cout << "\n";
  }
  return report.passed() && wiresPassed ? 0 : 2;
}

int cmdCensus(int argc, const char* const* argv) {
  std::string netlistPath, preset = "PG1", emMode = "steady";
  double marginMpa = 340.0;
  double tuneIr = 0.06;
  CliFlags flags("viaduct_cli census: wire Blech immortality census");
  flags.addString("netlist", &netlistPath, "SPICE netlist (overrides preset)");
  flags.addString("preset", &preset, "PG1/PG2/PG5");
  flags.addDouble("margin-mpa", &marginMpa,
                  "critical-stress margin sigma_C - sigma_T [MPa]");
  flags.addString("em-mode", &emMode,
                  "tree-census verdict mode: steady|transient|hybrid");
  flags.addDouble("tune-ir", &tuneIr,
                  "retune loads to this nominal IR fraction (0 = as-is)");
  if (!flags.parse(argc, argv)) return 0;

  Netlist netlist = loadGrid(netlistPath, preset);
  if (tuneIr > 0.0) tuneNominalIrDrop(netlist, tuneIr);
  const auto census = classifyWires(netlist, WireGeometry{},
                                    marginMpa * units::MPa, EmParameters{});
  std::cout << census.mortalWires << "/" << census.totalWires
            << " wires mortal ("
            << TextTable::num(100.0 * census.mortalFraction(), 2)
            << "%); worst jL = " << TextTable::num(census.worstProduct, 0)
            << " A/m vs limit " << TextTable::num(census.productLimit, 0)
            << " A/m\n";
  const auto treeCensus =
      classifyWiresEm(netlist, WireGeometry{}, marginMpa * units::MPa,
                      EmParameters{}, parseSignoffMode(emMode));
  std::cout << "tree census (" << signoffModeName(treeCensus.mode) << "): "
            << treeCensus.mortalTrees << "/" << treeCensus.trees
            << " trees mortal over " << treeCensus.branches
            << " branches; worst steady stress rise "
            << TextTable::num(treeCensus.worstStressRisePa / units::MPa, 1)
            << " MPa vs margin "
            << TextTable::num(treeCensus.stressMarginPa / units::MPa, 1)
            << " MPa";
  if (treeCensus.transientFallbacks > 0)
    std::cout << " (" << treeCensus.transientFallbacks
              << " transient fallbacks)";
  if (treeCensus.cyclicComponents > 0)
    std::cout << " [" << treeCensus.cyclicComponents
              << " cyclic components via Blech, "
              << treeCensus.mortalCyclicSegments << " mortal]";
  std::cout << "\n";
  return census.mortalWires == 0 && treeCensus.passed() ? 0 : 2;
}

void printUsage() {
  std::cout << "usage: viaduct_cli <command> [flags]\n\ncommands:\n"
               "  generate      write a synthetic power-grid netlist\n"
               "  analyze       two-level EM TTF analysis of a grid\n"
               "  characterize  level-1 via-array TTF characterization\n"
               "  signoff       traditional current-density check\n"
               "  census        wire Blech immortality census\n"
               "\nglobal flags (any command):\n"
               "  --metrics-out FILE  write the obs metrics snapshot (JSON)\n"
               "  --trace-out FILE    write a Chrome trace-event JSON\n"
               "  --fault-spec SPEC   arm deterministic fault injection\n"
               "                      (e.g. \"seed=42;cg.nonconverge:p=0.05\";\n"
               "                      VIADUCT_FAULTS env var works too)\n"
               "  --obs-listen H:P    serve live telemetry over HTTP\n"
               "                      (/metrics OpenMetrics, /metrics.json,\n"
               "                      /debug/solves, /healthz; port 0 picks\n"
               "                      an ephemeral port)\n"
               "  --metrics-stream F  append registry snapshots to F (JSONL)\n"
               "  --metrics-every N   stream sampling interval in seconds\n"
               "                      (default 5)\n"
               "  --progress          periodic progress/ETA lines (INFO;\n"
               "                      VIADUCT_LOG_JSON=1 for JSON log lines)\n"
               "\nrun 'viaduct_cli <command> --help' for flags.\n";
}

/// Extracts `--flag VALUE` or `--flag=VALUE` from `args` (in place);
/// returns the value or "" when the flag is absent.
std::string extractFlag(std::vector<const char*>& args,
                        const std::string& flag) {
  const std::string prefix = flag + "=";
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string arg = args[i];
    if (arg == flag) {
      if (i + 1 >= args.size())
        throw PreconditionError(flag + " needs a file argument");
      const std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
    if (arg.rfind(prefix, 0) == 0) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return arg.substr(prefix.size());
    }
  }
  return "";
}

/// Extracts a valueless `--flag` from `args` (in place); returns whether it
/// was present.
bool extractBoolFlag(std::vector<const char*>& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (std::string(args[i]) == flag) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  std::vector<const char*> args(argv, argv + argc);
  std::string metricsOut, traceOut, obsListen, metricsStream;
  double metricsEvery = 5.0;
  try {
    metricsOut = extractFlag(args, "--metrics-out");
    traceOut = extractFlag(args, "--trace-out");
    obsListen = extractFlag(args, "--obs-listen");
    metricsStream = extractFlag(args, "--metrics-stream");
    const std::string everySpec = extractFlag(args, "--metrics-every");
    if (!everySpec.empty()) {
      const auto every = parseDoubleToken(everySpec);
      if (!every)
        throw PreconditionError("bad --metrics-every '" + everySpec + "'");
      metricsEvery = *every;
    }
    if (extractBoolFlag(args, "--progress")) setLogLevel(LogLevel::kInfo);
    // --fault-spec stacks on top of whatever VIADUCT_FAULTS armed (the
    // registry parses the env var on first access).
    const std::string faultSpec = extractFlag(args, "--fault-spec");
    if (!faultSpec.empty()) fault::Registry::instance().configure(faultSpec);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!traceOut.empty()) obs::setTracingEnabled(true);

  // Live telemetry starts before subcommand dispatch so a scrape or the
  // stream sees the whole run, and stops (unique_ptr destructors, final
  // sample included) after writeObsArtifacts on every exit path.
  std::unique_ptr<obs::TelemetryHttpServer> telemetryServer;
  std::unique_ptr<obs::MetricsSampler> metricsSampler;
  if (!obsListen.empty()) {
    std::string error;
    telemetryServer = obs::TelemetryHttpServer::start(obsListen, &error);
    if (!telemetryServer) {
      std::cerr << "error: --obs-listen: " << error << "\n";
      return 1;
    }
    std::cerr << "telemetry: serving " << telemetryServer->endpoint()
              << "/metrics\n";
  }
  if (!metricsStream.empty()) {
    std::string error;
    metricsSampler =
        obs::MetricsSampler::start(metricsStream, metricsEvery, &error);
    if (!metricsSampler) {
      std::cerr << "error: --metrics-stream: " << error << "\n";
      return 1;
    }
  }

  // Write the observability artifacts on every exit path (including
  // subcommand errors — a failed run's partial metrics are still useful).
  const auto writeObsArtifacts = [&] {
    if (!metricsOut.empty() && !obs::writeSnapshot(metricsOut))
      std::cerr << "warning: could not write metrics to " << metricsOut << "\n";
    if (!traceOut.empty() && !obs::writeTrace(traceOut))
      std::cerr << "warning: could not write trace to " << traceOut << "\n";
    if (fault::Registry::instance().totalFires() > 0)
      std::cerr << "fault injection: " << fault::Registry::instance().summary()
                << "\n";
  };

  if (args.size() < 2) {
    printUsage();
    return 1;
  }
  const std::string cmd = args[1];
  // Shift argv so each subcommand sees its own flags.
  const int subArgc = static_cast<int>(args.size()) - 1;
  const char* const* subArgv = args.data() + 1;
  try {
    int rc = 1;
    if (cmd == "generate") {
      rc = cmdGenerate(subArgc, subArgv);
    } else if (cmd == "analyze") {
      rc = cmdAnalyze(subArgc, subArgv);
    } else if (cmd == "characterize") {
      rc = cmdCharacterize(subArgc, subArgv);
    } else if (cmd == "signoff") {
      rc = cmdSignoff(subArgc, subArgv);
    } else if (cmd == "census") {
      rc = cmdCensus(subArgc, subArgv);
    } else if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      printUsage();
      return 0;
    } else {
      std::cerr << "unknown command: " << cmd << "\n";
      printUsage();
      return 1;
    }
    writeObsArtifacts();
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    writeObsArtifacts();
    return 1;
  }
}
