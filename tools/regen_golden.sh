#!/usr/bin/env bash
# Regenerates data/golden/paper_parity.golden after a DELIBERATE change to
# the physics or numerics. The regenerated file is a reviewed artifact:
# commit the diff together with the change that caused it, and say why the
# numbers moved. tests/paper_parity_test.cpp fails until the fixtures match
# the code again.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake --build "$BUILD_DIR" --target golden_gen -j >/dev/null
mkdir -p data/golden
"$BUILD_DIR/tools/golden_gen" --out data/golden/paper_parity.golden
git --no-pager diff --stat data/golden/ || true
