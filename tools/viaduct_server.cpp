// viaduct_server: characterization-as-a-service daemon.
//
//   viaduct_server --listen 127.0.0.1:0 --workers 2 --cache lib.cache
//
// Serves the library's expensive flows over a minimal HTTP/JSON protocol
// (DESIGN.md §5.13, README "Serving") so many clients share one in-memory
// characterization library and stress-primitive store:
//
//   GET  /healthz           liveness
//   GET  /metrics           OpenMetrics exposition (scrape in-process)
//   GET  /metrics.json      full obs registry snapshot
//   GET  /debug/solves      recent solver-health traces
//   GET  /v1/stats          request/dedup/rejection counters
//   POST /v1/characterize   {"n":8,"pattern":"T","trials":500,"criterion":"2x"}
//   POST /v1/analyze        {"preset":"PG1","viaN":4,"trials":300,...}
//
// Prints "listening on http://HOST:PORT" on stdout once ready (ephemeral
// ports are read back), then blocks until SIGTERM/SIGINT, drains queued
// and in-flight requests without dropping a response, optionally writes
// the final metrics snapshot (--metrics-out), and exits 0.
#include <signal.h>

#include <iostream>
#include <string>

#include "common/check.h"
#include "common/cli.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "serve/server.h"

using namespace viaduct;

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);

  serve::ServerConfig config;
  int threads = 0;
  std::string metricsOut, faultSpec;
  CliFlags flags("viaduct_server: characterization-as-a-service daemon");
  flags.addString("listen", &config.listen,
                  "HOST:PORT to serve on (port 0 = ephemeral)");
  flags.addInt("workers", &config.workers, "request worker threads");
  flags.addInt("queue-limit", &config.queueLimit,
               "max queued connections before 429 rejection");
  flags.addInt("request-timeout-ms", &config.requestTimeoutMs,
               "slow-client budget for reading one request");
  flags.addInt("max-n", &config.maxN, "largest via-array n accepted");
  flags.addInt("max-trials", &config.maxTrials,
               "largest trial count accepted");
  flags.addString("cache", &config.cachePath,
                  "characterization cache file shared by all requests");
  flags.addString("primitive-store", &config.primitiveStorePath,
                  "on-disk FEA stress-primitive store; a warm store serves "
                  "characterize requests with zero FEA solves");
  flags.addInt("threads", &threads,
               "solver threads per request (0 = hardware concurrency)");
  flags.addString("metrics-out", &metricsOut,
                  "write the obs metrics snapshot (JSON) after drain");
  flags.addString("fault-spec", &faultSpec,
                  "arm deterministic fault injection (VIADUCT_FAULTS env "
                  "var works too)");
  flags.addInt("debug-execute-delay-ms", &config.debugExecuteDelayMs,
               "TEST HOOK: hold each execution this long so tests can "
               "overlap duplicate requests deterministically");
  if (!flags.parse(argc, argv)) return 0;
  config.parallelism.threads = threads;

  try {
    if (!faultSpec.empty()) fault::Registry::instance().configure(faultSpec);

    // Block the shutdown signals BEFORE any server thread exists, so they
    // are only ever delivered to this thread's sigwait below.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGTERM);
    sigaddset(&signals, SIGINT);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    std::string error;
    auto server = serve::ViaductServer::start(config, &error);
    if (!server) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    std::cout << "listening on " << server->endpoint() << std::endl;

    int sig = 0;
    while (sigwait(&signals, &sig) != 0) {
      // EINTR-equivalent: sigwait only fails on EINVAL/EINTR; retry.
    }
    std::cerr << "received " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
              << ", draining\n";
    server->drainAndStop();

    const auto stats = server->stats();
    if (!metricsOut.empty() && !obs::writeSnapshot(metricsOut))
      std::cerr << "warning: could not write metrics to " << metricsOut
                << "\n";
    std::cerr << "drained: " << stats.requestsTotal << " requests ("
              << stats.executed << " executed, " << stats.deduped
              << " deduped, " << stats.rejected << " rejected, "
              << stats.errors << " errors)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
