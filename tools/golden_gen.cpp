// Regenerates the paper-parity golden fixtures (data/golden/) that
// tests/paper_parity_test.cpp locks against. Run via tools/regen_golden.sh
// after a DELIBERATE physics/numerics change, and review the value diff
// like any other code change — the whole point of the harness is that this
// file never regenerates silently.
#include <iostream>

#include "common/cli.h"
#include "common/logging.h"
#include "parity_util.h"

using namespace viaduct;

int main(int argc, char** argv) {
  std::string out = "data/golden/paper_parity.golden";
  CliFlags flags("golden_gen: regenerate the paper-parity fixtures");
  flags.addString("out", &out, "output golden file");
  if (!flags.parse(argc, argv)) return 0;
  setLogLevel(LogLevel::kWarn);

  std::cout << "computing parity sets (fig6/fig7 stress, fig8b TTF, "
            << parity::kFig8bTrials << " MC trials)...\n";
  const parity::ParitySets sets = parity::computeParitySets();
  if (!parity::writeGolden(out, sets)) {
    std::cerr << "error: cannot write " << out << "\n";
    return 1;
  }
  std::size_t values = 0;
  for (const auto& [name, v] : sets) values += v.size();
  std::cout << "wrote " << out << ": " << sets.size() << " sets, " << values
            << " values\n";
  return 0;
}
