#!/usr/bin/env bash
# Tier-1 verification for viaduct, plus the fault/recovery sweeps:
#
#   1. release build + full ctest (the tier-1 gate from ROADMAP.md);
#   2. the fault-labelled recovery tests (ctest -L fault);
#   3. a thread-sanitized build running the tsan-labelled set (includes the
#      fault tests — the registry's decision streams are TSan bait);
#   4. an uninjected CLI smoke run that must complete WARN-free: with no
#      site armed, no recovery path may fire and nothing may warn.
#
# Usage: tools/run_tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/4] tier-1: configure + build + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/4] fault label: recovery-path tests ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -L fault

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "=== [3/4] tsan sweep skipped (--skip-tsan) ==="
else
  echo "=== [3/4] thread-sanitized build: tsan label ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVIADUCT_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L tsan
fi

echo "=== [4/4] uninjected CLI smoke run must be WARN-free ==="
SMOKE_LOG="$(mktemp)"
trap 'rm -f "$SMOKE_LOG"' EXIT
./build/tools/viaduct_cli analyze --preset PG1 --trials 50 --char-trials 50 \
  2> "$SMOKE_LOG" || { cat "$SMOKE_LOG" >&2; exit 1; }
if grep -E "\[viaduct (WARN|ERROR)" "$SMOKE_LOG"; then
  echo "FAIL: WARN/ERROR log lines in an uninjected run (above)" >&2
  exit 1
fi
echo "smoke run clean (no WARN/ERROR lines)"
echo "ALL TIER-1 CHECKS PASSED"
