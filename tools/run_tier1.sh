#!/usr/bin/env bash
# Tier-1 verification for viaduct, plus the fault/recovery sweeps:
#
#   1. release build + full ctest (the tier-1 gate from ROADMAP.md);
#   2. the fault-labelled recovery tests (ctest -L fault);
#   3. the checkpoint-labelled crash-safety/resume tests (ctest -L checkpoint);
#   4. a thread-sanitized build running the tsan-labelled set (includes the
#      fault and checkpoint tests — the registry's decision streams and the
#      trial recorder are TSan bait);
#   5. an uninjected CLI smoke run that must complete WARN-free: with no
#      site armed, no recovery path may fire and nothing may warn. The run
#      checkpoints, is re-run with --resume, and both must agree;
#   6. the perf_viaarray A/B smoke: the incremental network solver and the
#      legacy exact path must agree step-by-step and across a full level-1
#      characterization (exit is nonzero on mismatch, never on timing);
#   7. the perf_grid_scale smoke: the level-2 shared-base supernodal engine
#      on a ~1e4-node synthetic mesh — asserts up-looking/supernodal voltage
#      parity, thread-count bit-identity, and a floor on the shared-base
#      speedup over factorization-per-trial (exit is nonzero on any miss);
#   8. the perf_obs_export smoke: grid MC with live telemetry fully on
#      (registry + JSONL sampler + HTTP listener + a scraper thread) must
#      stay within the telemetry overhead budget and keep ttfSamples
#      bit-identical vs. obs-off across thread counts (BENCH_obs_export.json);
#   9. the perf_fea_mg smoke: multigrid vs IC(0) end-to-end FEA solve with
#      via-peak parity and warm-primitive-store gates (BENCH_fea_mg.json;
#      the >= 4x speedup floor applies to the full-size run, not the smoke);
#  10. a CLI warm-store smoke: two characterize runs sharing a
#      --primitive-store file — the second must report zero FEA solves in
#      its --metrics-out snapshot and print identical TTF percentiles;
#  11. the perf_serve smoke: in-process serving-layer gates — concurrent
#      duplicate dedup (one execution, one FEA solve), admission-control
#      shedding, slow/malformed-client robustness, lossless drain
#      (BENCH_serve.json);
#  12. a serve daemon smoke: viaduct_server on an ephemeral port, a burst
#      of concurrent IDENTICAL characterize requests (held overlapping via
#      the debug execute-delay hook) must trigger exactly ONE FEA-solve
#      burst, and SIGTERM must drain to a clean exit 0 whose --metrics-out
#      snapshot proves the dedup (serve.executed == 1);
#  13. the perf_em_steady smoke: steady-state vs transient wire-EM audit on
#      a ~1e4-node mesh — closed-form/marched parity <= 1e-8 on the fig6/
#      fig7 line geometries, verdict + sample bit-identity across EM modes,
#      and a floor on the steady-vs-transient per-trial speedup
#      (BENCH_em_steady.json; the >= 5x floor applies to the full run).
#
# Usage: tools/run_tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "=== [1/13] tier-1: configure + build + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/13] fault label: recovery-path tests ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -L fault

echo "=== [3/13] checkpoint label: crash-safety and resume tests ==="
ctest --test-dir build --output-on-failure -j "$JOBS" -L checkpoint

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "=== [4/13] tsan sweep skipped (--skip-tsan) ==="
else
  echo "=== [4/13] thread-sanitized build: tsan label ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVIADUCT_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L tsan
fi

echo "=== [5/13] uninjected CLI smoke run must be WARN-free ==="
SMOKE_LOG="$(mktemp)"
SMOKE_CKPT="$(mktemp -u).ckpt"
trap 'rm -f "$SMOKE_LOG" "$SMOKE_CKPT"* ' EXIT
./build/tools/viaduct_cli analyze --preset PG1 --trials 50 --char-trials 50 \
  --checkpoint "$SMOKE_CKPT" \
  --metrics-stream build/SMOKE_metrics_stream.jsonl --metrics-every 0.5 \
  2> "$SMOKE_LOG" \
  || { cat "$SMOKE_LOG" >&2; exit 1; }
# The background sampler must have left a parseable JSONL stream behind.
[ -s build/SMOKE_metrics_stream.jsonl ] \
  && grep -q "viaduct-obs-stream-v1" build/SMOKE_metrics_stream.jsonl \
  || { echo "FAIL: --metrics-stream produced no samples" >&2; exit 1; }
# Resuming the finished run must restore every trial and stay WARN-free.
./build/tools/viaduct_cli analyze --preset PG1 --trials 50 --char-trials 50 \
  --checkpoint "$SMOKE_CKPT" --resume 2>> "$SMOKE_LOG" \
  | grep -q "checkpoint: resumed 50/50" \
  || { echo "FAIL: --resume did not restore all 50 grid trials" >&2
       cat "$SMOKE_LOG" >&2; exit 1; }
if grep -E "\[viaduct (WARN|ERROR)" "$SMOKE_LOG"; then
  echo "FAIL: WARN/ERROR log lines in an uninjected run (above)" >&2
  exit 1
fi
echo "smoke run clean (no WARN/ERROR lines, resume exact)"

echo "=== [6/13] perf_viaarray: incremental vs exact solver A/B smoke ==="
# Benchmark registrations are skipped (filter matches nothing); the manual
# A/B cross-check and BENCH_viaarray.json still run. Exit is nonzero only
# if the two solver paths disagree.
(cd build/bench && ./perf_viaarray --benchmark_filter='^$')

echo "=== [7/13] perf_grid_scale: shared-base level-2 engine smoke ==="
# Parity, determinism, and speedup gates on the smallest mesh; the full
# 1e4 -> 1e6 sweep is the same binary without --smoke.
(cd build/bench && ./perf_grid_scale --smoke)

echo "=== [8/13] perf_obs_export: live-telemetry overhead + bit-identity ==="
# Grid MC with the registry, JSONL sampler, HTTP listener, and a live
# scraper all running must stay within the overhead budget and produce
# bit-identical samples vs. obs-off across thread counts.
(cd build/bench && ./perf_obs_export --smoke)

echo "=== [9/13] perf_fea_mg: multigrid vs IC(0) FEA solve smoke ==="
# End-to-end solve parity (mg and ic0 via peaks must agree) and the
# warm-primitive-store zero-solve gate on a reduced problem; the full
# fig7-size run with the >= 4x speedup floor is the same binary
# without --smoke (CI uploads its BENCH_fea_mg.json).
(cd build/bench && ./perf_fea_mg --smoke)

echo "=== [10/13] CLI warm-store smoke: second run must skip all FEA ==="
STORE_FILE="$(mktemp -u).primitives"
COLD_OUT="$(mktemp)"
WARM_OUT="$(mktemp)"
WARM_METRICS="$(mktemp)"
trap 'rm -f "$SMOKE_LOG" "$SMOKE_CKPT"* "$STORE_FILE" "$COLD_OUT" \
  "$WARM_OUT" "$WARM_METRICS"' EXIT
./build/tools/viaduct_cli characterize --n 4 --trials 100 \
  --primitive-store "$STORE_FILE" > "$COLD_OUT"
./build/tools/viaduct_cli characterize --n 4 --trials 100 \
  --primitive-store "$STORE_FILE" --metrics-out "$WARM_METRICS" > "$WARM_OUT"
cmp -s "$COLD_OUT" "$WARM_OUT" \
  || { echo "FAIL: warm-store characterize output differs from cold" >&2
       diff "$COLD_OUT" "$WARM_OUT" >&2 || true; exit 1; }
python3 - "$WARM_METRICS" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
solves = snap.get("counters", {}).get("viaarray.fea_solves", 0)
hits = snap.get("counters", {}).get("primitive_store.hits", 0)
if solves != 0 or hits < 1:
    sys.exit(f"FAIL: warm run had fea_solves={solves}, store hits={hits}")
print(f"warm store clean: 0 FEA solves, {hits} primitive hit(s)")
EOF

echo "=== [11/13] perf_serve: serving-layer dedup/admission/drain smoke ==="
# In-process gates: N concurrent identical characterize requests collapse
# to ONE execution and ONE FEA solve; the queue limit sheds load with 429;
# malformed/slow clients get 400/413/408; drain loses no in-flight
# response (exit is nonzero on any gate miss; writes BENCH_serve.json).
(cd build/bench && ./perf_serve --smoke)

echo "=== [12/13] serve daemon smoke: dedup burst + clean SIGTERM drain ==="
SERVE_LOG="$(mktemp)"
SERVE_METRICS="$(mktemp)"
trap 'rm -f "$SMOKE_LOG" "$SMOKE_CKPT"* "$STORE_FILE" "$COLD_OUT" \
  "$WARM_OUT" "$WARM_METRICS" "$SERVE_LOG" "$SERVE_METRICS"' EXIT
# The debug execute-delay holds the first request open long enough that
# the rest of the burst provably overlaps it in flight; workers >= burst
# so every duplicate is being handled concurrently when it joins.
./build/tools/viaduct_server --listen 127.0.0.1:0 --workers 6 \
  --debug-execute-delay-ms 300 --metrics-out "$SERVE_METRICS" \
  > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
SERVE_PORT=""
for _ in $(seq 1 100); do
  SERVE_PORT="$(sed -n 's#^listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' \
    "$SERVE_LOG")"
  [ -n "$SERVE_PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null \
    || { echo "FAIL: viaduct_server exited early" >&2
         cat "$SERVE_LOG" >&2; exit 1; }
  sleep 0.1
done
[ -n "$SERVE_PORT" ] \
  || { echo "FAIL: viaduct_server never announced its port" >&2
       cat "$SERVE_LOG" >&2; exit 1; }
python3 - "$SERVE_PORT" <<'EOF'
import json, sys, threading, urllib.request
port, burst = sys.argv[1], 6
body = b'{"n": 3, "trials": 20, "criterion": "open"}'
results = [None] * burst
def fire(i):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/characterize", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req, timeout=30) as resp:
        results[i] = (resp.status, json.load(resp))
threads = [threading.Thread(target=fire, args=(i,)) for i in range(burst)]
for t in threads: t.start()
for t in threads: t.join()
if any(r is None or r[0] != 200 for r in results):
    sys.exit(f"FAIL: burst responses incomplete: {results}")
medians = {r[1]["medianYears"] for r in results}
deduped = sum(1 for r in results if r[1].get("deduped"))
if len(medians) != 1:
    sys.exit(f"FAIL: duplicate requests disagreed: {medians}")
if deduped != burst - 1:
    sys.exit(f"FAIL: expected {burst - 1} deduped joins, saw {deduped}")
print(f"burst ok: {burst} duplicates agree, {deduped} joined in flight")
EOF
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
[ "$SERVE_RC" -eq 0 ] \
  || { echo "FAIL: viaduct_server exited $SERVE_RC on SIGTERM" >&2
       cat "$SERVE_LOG" >&2; exit 1; }
python3 - "$SERVE_METRICS" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
counters = snap.get("counters", {})
solves = counters.get("viaarray.fea_solves", 0)
executed = counters.get("serve.executed", 0)
deduped = counters.get("serve.deduped", 0)
if solves != 1 or executed != 1:
    sys.exit(f"FAIL: burst ran fea_solves={solves}, executed={executed}; "
             "expected exactly one of each")
if deduped < 1:
    sys.exit("FAIL: drained snapshot shows no deduped joins")
print(f"drain snapshot clean: 1 FEA-solve burst, {deduped} deduped join(s)")
EOF

echo "=== [13/13] perf_em_steady: steady-state wire-EM parity + speedup ==="
# Closed-form steady-state audit vs the marched transient reference on the
# paper line geometries (parity <= 1e-8), EM-mode verdict identity, and
# MC sample bit-identity with the audit on; the full run with the >= 5x
# per-trial floor is the same binary without --smoke.
(cd build/bench && ./perf_em_steady --smoke)

echo "ALL TIER-1 CHECKS PASSED"
